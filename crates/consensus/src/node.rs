//! The Sailfish node: one state machine for all three evaluated protocols.
//!
//! Lifecycle of a round `r` at an honest node:
//!
//! 1. On entering `r`, propose: build the block (workload batches, or empty
//!    for non-proposers), build the vertex (strong edges to every live
//!    round-`r−1` vertex, weak edges to late arrivals, TC/NVC if the
//!    previous leader vertex is missing), and broadcast both through the
//!    merged tribe-assisted RBC. Arm the round timer.
//! 2. On RBC certification/delivery of a vertex: validate its shape and
//!    leader-edge rule, insert it into the DAG (buffering until causal
//!    completeness), and if it is the round leader's vertex, multicast a
//!    leader vote (unless this node already announced a timeout).
//! 3. `2f+1` votes commit the leader vertex directly; the leader chain is
//!    resolved backward through strong paths and the causal history is
//!    emitted in deterministic order (`a_deliver`).
//! 4. Advance to `r+1` once `2f+1` round-`r` vertices are live including
//!    the leader's — or a timeout certificate replaces it.
//!
//! Block payloads trail metadata by design: ordering and progress never
//! wait for block downloads (paper §5); execution does.

use crate::config::NodeConfig;
use crate::execution::Executor;
use crate::messages::{vote_digest, ConsensusMsg};
use crate::payload::MergedPayload;
use crate::schedule::LeaderSchedule;
use crate::trackers::{TimeoutTracker, VoteOutcome, VoteTracker};
use clanbft_crypto::{Authenticator, Digest};
use clanbft_dag::{order, Dag, InsertOutcome};
use clanbft_mempool::{plan_batches, ClientIngress, WorkloadSpec};
use clanbft_rbc::{parse_retry_token, Effects, EngineConfig, RbcEvent, TribePayload, TribeRbc2};
use clanbft_simnet::protocol::{Ctx, Protocol};
use clanbft_telemetry::{counters, Event};
use clanbft_types::certs::{no_vote_digest, timeout_digest, NoVoteCert, TimeoutCert};
use clanbft_types::{Block, Encode, Evidence, Micros, PartyId, Round, TxBatch, Vertex, VertexRef};
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// One entry of the emitted total order (`a_deliver`).
#[derive(Clone, Debug)]
pub struct CommittedVertex {
    /// Position in the total order.
    pub sequence: u64,
    /// The ordered vertex.
    pub vertex: VertexRef,
    /// Digest of its block.
    pub block_digest: Digest,
    /// Declared block size on the wire.
    pub block_bytes: u64,
    /// Transactions in the block.
    pub block_tx_count: u64,
    /// When this node committed it.
    pub committed_at: Micros,
    /// The leader round whose commit swept this vertex in (needed to serve
    /// the committed-order suffix during peer state transfer).
    pub leader_round: Round,
}

/// Batch metadata remembered at proposal time, for latency metrics.
#[derive(Clone, Debug)]
pub struct ProposedBatch {
    /// The proposing vertex.
    pub vertex: VertexRef,
    /// Creation timestamp of the batch.
    pub created_at: Micros,
    /// Transactions in the batch.
    pub count: u32,
}

/// At most this many evidence records are retained per node — enough for
/// any audit while bounding what an equivocation storm can allocate.
pub(crate) const EVIDENCE_CAP: usize = 256;

/// The Sailfish / single-clan / multi-clan node.
///
/// Fields are `pub(crate)` where the recovery layer ([`crate::recovery`])
/// rebuilds or serves them.
pub struct SailfishNode {
    pub(crate) cfg: NodeConfig,
    pub(crate) schedule: LeaderSchedule,
    pub(crate) auth: Arc<Authenticator>,
    pub(crate) rbc: TribeRbc2<MergedPayload>,
    pub(crate) dag: Dag,
    votes: VoteTracker,
    timeouts: TimeoutTracker,

    pub(crate) current_round: Round,
    pub(crate) stopped_proposing: bool,
    /// Rounds this node voted in (leader vertex delivered in time).
    pub(crate) voted: HashSet<Round>,
    /// Rounds this node announced a timeout for (mutually exclusive with
    /// voting — the quorum-intersection hinge of commit safety).
    pub(crate) no_voted: HashSet<Round>,
    /// Certificates assembled from 2f+1 timeout announcements.
    pub(crate) certs_formed: HashMap<Round, (TimeoutCert, NoVoteCert)>,

    /// Misbehaviour proof records observed by this node (capped).
    pub(crate) evidence: Vec<Evidence>,
    /// `(round, culprit)` pairs already evidenced — one record per pair.
    pub(crate) evidence_keys: HashSet<(Round, PartyId)>,

    /// Vertices validated and accepted (pre- or post-DAG-liveness), with
    /// their content ids cached (vertex hashing is hot at scale).
    pub(crate) accepted: HashMap<VertexRef, (Arc<Vertex>, Digest)>,
    /// Full blocks held (clan member for the proposer, or own proposals).
    pub(crate) blocks: HashMap<VertexRef, Arc<Block>>,
    /// Live vertices that arrived after their round passed — weak-edge
    /// candidates for the next proposal.
    late_arrivals: BTreeSet<VertexRef>,

    pub(crate) last_committed: Option<Round>,
    /// The emitted total order.
    pub committed_log: Vec<CommittedVertex>,
    /// Proposal-time batch metadata (for the metrics layer).
    pub proposed_batches: Vec<ProposedBatch>,

    /// Execution layer (when enabled): ordered vertices awaiting their
    /// block, and the executor folding them into the state root.
    exec_queue: VecDeque<VertexRef>,
    /// The executor, if execution is enabled.
    pub executor: Option<Executor>,

    /// Client ingress: workload generator, bounded mempool and dynamic
    /// batch sizer (`None` for non-proposers and zero-workload runs).
    pub(crate) ingress: Option<ClientIngress>,

    pub(crate) next_seq: u64,
    pub(crate) last_proposal_at: Micros,

    // --- durability & recovery (logic in `crate::recovery`) ---
    /// WAL + checkpoint store (`None` = memory-only node).
    pub(crate) storage: Option<clanbft_storage::NodeStorage>,
    /// Commit sequences emitted by previous incarnations of this node: the
    /// global sequence number of `committed_log[0]`.
    pub(crate) commit_seq_base: u64,
    /// Leader round at which the last checkpoint was installed.
    pub(crate) last_checkpoint_round: u64,
    /// This node's newest proposal, kept for idempotent re-broadcast after
    /// a restart (tracked only when storage is on).
    pub(crate) last_proposal: Option<clanbft_storage::ProposalEntry>,
    /// Per party: `round.0 + 1` of its newest vertex in the total order
    /// (0 = none yet) — the liveness table epoch rotation decides on.
    pub(crate) committed_round_by: Vec<u64>,
    /// Epoch-rotation decisions made so far, oldest first.
    pub(crate) epochs: Vec<clanbft_storage::EpochEntry>,
    /// The next epoch number to decide (1-based).
    pub(crate) next_epoch: u64,
    /// In-flight post-restart state transfer (client side).
    pub(crate) catchup: Option<crate::recovery::CatchupState>,
    /// `(peer, from_round)` state requests already answered — the pull
    /// rate-limit pattern applied to state transfer.
    pub(crate) served_state: HashSet<(PartyId, u64)>,
    /// WAL records replayed at construction (recovery telemetry).
    pub(crate) recovered_records: u64,
    /// Whether this construction rebuilt durable state from disk.
    pub(crate) recovered: bool,
}

/// Cap on `TxBatch` runs per block: pulled transactions are coalesced by
/// arrival stamp, and arbitrarily fragmented stamps are merged down to this
/// many batches (earliest stamp wins, so measured latency only gets more
/// pessimistic).
const MAX_BATCHES_PER_BLOCK: usize = 16;

impl SailfishNode {
    /// Builds a node from its configuration and signing identity.
    pub fn new(cfg: NodeConfig, auth: Arc<Authenticator>) -> SailfishNode {
        let mut engine_cfg = EngineConfig::new(cfg.me, Arc::clone(&cfg.topology), cfg.cost);
        engine_cfg.telemetry = cfg.telemetry.clone();
        engine_cfg.round_window = cfg.round_window;
        engine_cfg.pull_retry = cfg.pull_retry;
        let rbc =
            TribeRbc2::new(engine_cfg, Arc::clone(&auth)).with_sig_verification(cfg.verify_sigs);
        // Proposers front their proposals with a client ingress; the
        // workload defaults to the historical synthetic model so existing
        // `txs_per_proposal` callers keep their behaviour.
        let workload = cfg.workload.unwrap_or(WorkloadSpec::Synthetic {
            txs_per_proposal: cfg.txs_per_proposal,
        });
        let ingress = if cfg.is_block_proposer
            && !matches!(
                workload,
                WorkloadSpec::Synthetic {
                    txs_per_proposal: 0
                }
            ) {
            Some(ClientIngress::new(
                workload,
                cfg.tx_bytes,
                cfg.mempool,
                cfg.sizer,
                // Per-node arrival randomness, derived from the shared seed.
                cfg.schedule_seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(cfg.me.idx() as u64 + 1),
                cfg.telemetry.clone(),
            ))
        } else {
            None
        };
        let mut node = SailfishNode {
            schedule: LeaderSchedule::new(cfg.tribe.n(), cfg.schedule_seed),
            dag: Dag::new(cfg.tribe),
            votes: VoteTracker::new(cfg.tribe.n()),
            timeouts: TimeoutTracker::new(cfg.tribe.n()),
            rbc,
            auth,
            current_round: Round::GENESIS,
            stopped_proposing: false,
            voted: HashSet::new(),
            no_voted: HashSet::new(),
            certs_formed: HashMap::new(),
            evidence: Vec::new(),
            evidence_keys: HashSet::new(),
            accepted: HashMap::new(),
            blocks: HashMap::new(),
            late_arrivals: BTreeSet::new(),
            last_committed: None,
            committed_log: Vec::new(),
            proposed_batches: Vec::new(),
            exec_queue: VecDeque::new(),
            executor: if cfg.execute {
                Some(Executor::new())
            } else {
                None
            },
            ingress,
            next_seq: 0,
            last_proposal_at: Micros::ZERO,
            storage: None,
            commit_seq_base: 0,
            last_checkpoint_round: 0,
            last_proposal: None,
            committed_round_by: vec![0; cfg.tribe.n()],
            epochs: Vec::new(),
            next_epoch: 1,
            catchup: None,
            served_state: HashSet::new(),
            recovered_records: 0,
            recovered: false,
            cfg,
        };
        if let Some(dir) = node.cfg.storage_dir.clone() {
            let (storage, recovered) = clanbft_storage::NodeStorage::open(
                &dir,
                node.cfg.fsync,
                node.cfg.telemetry.clone(),
            )
            .expect("node storage must open");
            node.storage = Some(storage);
            node.rebuild_from(recovered);
        }
        node
    }

    /// Current round.
    pub fn round(&self) -> Round {
        self.current_round
    }

    /// Highest directly committed leader round.
    pub fn last_committed(&self) -> Option<Round> {
        self.last_committed
    }

    /// The leader schedule (shared by the whole tribe).
    pub fn schedule(&self) -> LeaderSchedule {
        self.schedule
    }

    /// Total transactions in this node's committed log.
    pub fn committed_txs(&self) -> u64 {
        self.committed_log.iter().map(|c| c.block_tx_count).sum()
    }

    /// This proposer's client ingress (mempool stats, sizer state,
    /// in-flight count), if it proposes a workload.
    pub fn ingress(&self) -> Option<&ClientIngress> {
        self.ingress.as_ref()
    }

    /// A full block this node holds (own proposals and clan downloads).
    /// Disappears once garbage collection passes it (`gc_depth`).
    pub fn held_block(&self, vref: &VertexRef) -> Option<&Block> {
        self.blocks.get(vref).map(Arc::as_ref)
    }

    /// Whether this construction rebuilt durable state from disk.
    pub fn recovered(&self) -> bool {
        self.recovered
    }

    /// The global sequence number of this incarnation's first commit:
    /// everything below it was committed (and persisted) by previous lives
    /// of this node.
    pub fn commit_seq_base(&self) -> u64 {
        self.commit_seq_base
    }

    /// Epoch-rotation decisions this node has made or replayed, oldest
    /// first. Deterministic across the tribe: every honest party's list
    /// agrees on any shared prefix.
    pub fn epoch_decisions(&self) -> &[clanbft_storage::EpochEntry] {
        &self.epochs
    }

    /// Misbehaviour evidence this node has accumulated (consensus-level
    /// double votes and vote/timeout conflicts, plus RBC-level equivocation
    /// drained from the broadcast engine).
    pub fn evidence(&self) -> &[Evidence] {
        &self.evidence
    }

    /// Records locally-detected misbehaviour: once per `(round, culprit)`,
    /// counted, traced and retained up to [`EVIDENCE_CAP`].
    fn record_evidence(&mut self, ev: Evidence, now: Micros) {
        if !self.evidence_keys.insert((ev.round(), ev.culprit())) {
            return;
        }
        self.cfg.telemetry.add(counters::EVIDENCE_RECORDED, 1);
        self.cfg.telemetry.add(counters::REJECTED_EQUIVOCATION, 1);
        self.cfg.telemetry.event(
            now,
            self.cfg.me,
            Event::EvidenceRecorded {
                kind: ev.kind(),
                round: ev.round(),
                culprit: ev.culprit(),
            },
        );
        if self.evidence.len() < EVIDENCE_CAP {
            if self.storage.is_some() {
                self.log_wal(&clanbft_storage::WalRecord::Evidence { evidence: ev });
            }
            self.evidence.push(ev);
        }
    }

    /// Pulls evidence the RBC engine recorded (it already counted and traced
    /// it) into this node's record.
    fn absorb_rbc_evidence(&mut self) {
        for ev in self.rbc.take_evidence() {
            if self.evidence_keys.insert((ev.round(), ev.culprit()))
                && self.evidence.len() < EVIDENCE_CAP
            {
                self.evidence.push(ev);
            }
        }
    }

    /// Round-window admission for direct consensus messages: discard what is
    /// behind the GC horizon or further ahead than the bounded buffers allow.
    fn admit_round(&mut self, round: Round) -> bool {
        if round < self.dag.horizon()
            || round.0 > self.current_round.0.saturating_add(self.cfg.round_window)
        {
            self.cfg.telemetry.add(counters::REJECTED_BUFFER_FULL, 1);
            return false;
        }
        true
    }

    // --- proposing ---------------------------------------------------------

    fn build_block(&mut self, round: Round, now: Micros) -> Block {
        let _prof = clanbft_profiler::scope("consensus.build_block");
        if self.stopped_proposing || !self.proposes_blocks_at(round) {
            return Block::empty(self.cfg.me, round);
        }
        // Epoch rotation can seat a party that was not a block proposer at
        // construction; its ingress comes to life with its first block.
        if self.ingress.is_none() {
            self.ensure_ingress(now);
        }
        let Some(ingress) = self.ingress.as_mut() else {
            return Block::empty(self.cfg.me, round);
        };
        // Advance simulated client arrivals over the inter-proposal gap,
        // then let the sizer decide how much of the queue this proposal
        // drains. Pulled transactions are coalesced into TxBatch runs by
        // arrival stamp so the measured latency keeps the queueing delay
        // real clients saw.
        ingress.poll(self.last_proposal_at, now, round.0);
        let gap = now.saturating_sub(self.last_proposal_at);
        let pulled = ingress.pull(now, gap);
        let plans = plan_batches(pulled, MAX_BATCHES_PER_BLOCK);
        let mut batches = Vec::with_capacity(plans.len());
        for plan in plans {
            batches.push(TxBatch::synthetic(
                self.cfg.me,
                self.next_seq,
                plan.count,
                plan.tx_bytes,
                plan.created_at,
            ));
            self.next_seq += u64::from(plan.count);
        }
        Block::new(self.cfg.me, round, batches)
    }

    pub(crate) fn propose(&mut self, round: Round, fx: &mut Effects<MergedPayload>, now: Micros) {
        let _prof = clanbft_profiler::scope("consensus.propose");
        if let Some(max) = self.cfg.max_round {
            if round.0 > max {
                self.stopped_proposing = true;
                return;
            }
        }
        let block = self.build_block(round, now);
        let mut strong_edges: Vec<VertexRef> = Vec::new();
        let mut weak_edges: Vec<VertexRef> = Vec::new();
        let mut nvc = None;
        let mut tc = None;
        if let Some(prev) = round.prev() {
            strong_edges = self
                .dag
                .round_vertices(prev)
                .iter()
                .map(|v| v.reference())
                .collect();
            debug_assert!(strong_edges.len() >= self.cfg.tribe.quorum());
            let leader_ref = self.schedule.leader_vertex(prev);
            if !strong_edges.contains(&leader_ref) {
                let (tcert, nvcert) = self
                    .certs_formed
                    .get(&prev)
                    .cloned()
                    .expect("advanced without leader vertex implies certificates");
                if self.schedule.is_leader(self.cfg.me, round) {
                    nvc = Some(nvcert);
                }
                tc = Some(tcert);
            }
            // Weak edges: late arrivals strictly older than the previous
            // round, capped at f per the vertex structure.
            let cap = self.cfg.tribe.f();
            let eligible: Vec<VertexRef> = self
                .late_arrivals
                .iter()
                .filter(|r| r.round < prev)
                .take(cap)
                .copied()
                .collect();
            for r in &eligible {
                self.late_arrivals.remove(r);
            }
            weak_edges = eligible;
        }
        let vertex = Vertex {
            round,
            source: self.cfg.me,
            block_digest: block.digest(),
            block_bytes: block.encoded_len() as u64,
            block_tx_count: block.tx_count(),
            strong_edges,
            weak_edges,
            nvc,
            tc,
        };
        let vref = vertex.reference();
        for batch in &block.batches {
            self.proposed_batches.push(ProposedBatch {
                vertex: vref,
                created_at: batch.created_at,
                count: batch.count,
            });
        }
        if self.cfg.telemetry.enabled() {
            // Construction is guarded: the strong-edge Vec allocates.
            self.cfg.telemetry.event(
                fx.stamp(),
                self.cfg.me,
                Event::VertexProposed {
                    round,
                    tx_count: vertex.block_tx_count,
                    digest: u64::from_be_bytes(
                        vertex.block_digest.0[..8].try_into().expect("digest width"),
                    ),
                    strong: vertex.strong_edges.iter().map(|r| r.source).collect(),
                    weak: vertex.weak_edges.len() as u64,
                },
            );
        }
        let payload = MergedPayload::new(vertex, block);
        // Persist-before-send: a crash after this point re-broadcasts the
        // identical vertex on recovery (RBC dedups); a crash before it
        // proposed nothing. Either way, no equivocation.
        if self.storage.is_some() {
            self.log_wal(&clanbft_storage::WalRecord::Proposed {
                vertex: (*payload.vertex).clone(),
                block: (*payload.block).clone(),
                next_tx_seq: self.next_seq,
            });
            self.last_proposal = Some(clanbft_storage::ProposalEntry {
                vertex: (*payload.vertex).clone(),
                block: (*payload.block).clone(),
            });
        }
        // Keep our own block regardless of clan membership (we produced it).
        self.blocks.insert(vref, Arc::clone(&payload.block));
        self.rbc.broadcast(round, payload, fx);
        if let Some(ingress) = self.ingress.as_mut() {
            ingress.note_proposed(vref);
        }
        self.last_proposal_at = now;
    }

    // --- vertex intake ------------------------------------------------------

    /// Validates and accepts a delivered vertex; idempotent.
    fn process_vertex(
        &mut self,
        vertex: Arc<Vertex>,
        fx: &mut Effects<MergedPayload>,
        now: Micros,
        out: &mut Vec<ConsensusMsg>,
    ) {
        let _prof = clanbft_profiler::scope("consensus.process_vertex");
        let vref = vertex.reference();
        if self.accepted.contains_key(&vref) || vref.round < self.dag.horizon() {
            return;
        }
        if !self.validate_vertex(&vertex, fx) {
            return;
        }
        fx.charge(
            self.cfg
                .cost
                .db_reads(vertex.strong_edges.len() + vertex.weak_edges.len()),
        );
        fx.charge(self.cfg.cost.db_write());
        let id = vertex.id();
        self.accepted.insert(vref, (Arc::clone(&vertex), id));
        if self.storage.is_some() {
            self.log_wal(&clanbft_storage::WalRecord::Accepted {
                vertex: (*vertex).clone(),
            });
        }

        // Leader vote (Sailfish's 1δ commit step).
        let round = vref.round;
        if self.schedule.leader_vertex(round) == vref
            && !self.voted.contains(&round)
            && !self.no_voted.contains(&round)
        {
            // Persist the vote before signing: a recovered node must never
            // vote twice, nor vote after having announced a timeout.
            if self.storage.is_some() {
                self.log_wal(&clanbft_storage::WalRecord::Voted { round });
            }
            self.voted.insert(round);
            fx.charge(self.cfg.cost.sign());
            self.cfg.telemetry.event(
                fx.stamp(),
                self.cfg.me,
                Event::LeaderVote {
                    round,
                    leader: vref.source,
                },
            );
            let sig = self.auth.sign_digest(&vote_digest(round, &id));
            out.push(ConsensusMsg::Vote {
                round,
                vertex_id: id,
                sig,
            });
        }

        match self.dag.insert((*vertex).clone()) {
            InsertOutcome::Live(new_live) => {
                if self.cfg.telemetry.enabled() {
                    let pending = self.dag.pending_count() as u64;
                    for live_ref in &new_live {
                        self.cfg.telemetry.event(
                            fx.stamp(),
                            self.cfg.me,
                            Event::DagLive {
                                round: live_ref.round,
                                source: live_ref.source,
                                pending,
                            },
                        );
                    }
                }
                for live_ref in new_live {
                    // Round entry and proposal are atomic (`try_advance`),
                    // so every round <= current_round has already chosen
                    // its strong edges: a vertex going live now missed the
                    // proposal that could have referenced it whenever
                    // `round.next() <= current_round`, not just `<`. Such
                    // vertices must be weak-edged later or they are
                    // orphaned from every causal history forever.
                    if live_ref.round.next() <= self.current_round {
                        self.late_arrivals.insert(live_ref);
                    }
                    // A leader vertex becoming live may complete a pending
                    // vote quorum.
                    if self.schedule.leader_vertex(live_ref.round) == live_ref {
                        self.try_commit(live_ref.round, now);
                    }
                }
            }
            InsertOutcome::Pending => {
                self.cfg.telemetry.event(
                    fx.stamp(),
                    self.cfg.me,
                    Event::DagBuffered {
                        round: vref.round,
                        source: vref.source,
                    },
                );
            }
            InsertOutcome::Duplicate => {}
        }
    }

    /// Structural and leader-edge validation (paper Fig. 4 rules).
    fn validate_vertex(&mut self, vertex: &Vertex, fx: &mut Effects<MergedPayload>) -> bool {
        if vertex.validate_shape(self.cfg.tribe.quorum()).is_err() {
            return false;
        }
        let Some(prev) = vertex.round.prev() else {
            return true;
        };
        let leader_ref = self.schedule.leader_vertex(prev);
        if vertex.has_strong_edge_to(&leader_ref) {
            return true;
        }
        // Missing leader edge needs justification: NVC for the next leader's
        // vertex, TC for everyone else's.
        let quorum = self.cfg.tribe.quorum();
        if self.schedule.leader_vertex(vertex.round) == vertex.reference() {
            let Some(nvc) = &vertex.nvc else { return false };
            fx.charge(self.cfg.cost.agg_verify(nvc.agg.count()));
            if nvc.round != prev {
                return false;
            }
            if self.cfg.verify_sigs && !nvc.verify(self.auth.registry(), quorum) {
                return false;
            }
            if !self.cfg.verify_sigs && nvc.agg.count() < quorum {
                return false;
            }
        } else {
            let Some(tc) = &vertex.tc else { return false };
            fx.charge(self.cfg.cost.agg_verify(tc.agg.count()));
            if tc.round != prev {
                return false;
            }
            if self.cfg.verify_sigs && !tc.verify(self.auth.registry(), quorum) {
                return false;
            }
            if !self.cfg.verify_sigs && tc.agg.count() < quorum {
                return false;
            }
        }
        true
    }

    // --- commit and ordering -----------------------------------------------

    pub(crate) fn try_commit(&mut self, round: Round, now: Micros) {
        let _prof = clanbft_profiler::scope("consensus.try_commit");
        // While a state transfer is in flight the commit cursor is not yet
        // aligned with the tribe's: emitting now could assign sequences the
        // tribe gave to other vertices. Ordering resumes when the transfer
        // settles (`finish_catchup` replays the suppressed attempts).
        if self.catchup.is_some() {
            return;
        }
        if self.last_committed.is_some_and(|lc| round <= lc) {
            return;
        }
        let leader_ref = self.schedule.leader_vertex(round);
        if self.dag.get(&leader_ref).is_none() {
            return;
        }
        let Some((_, id)) = self.accepted.get(&leader_ref) else {
            return;
        };
        if self.votes.count(round, id) < self.cfg.tribe.quorum() {
            return;
        }
        // Direct commit: resolve the indirect chain and emit the order.
        let schedule = self.schedule;
        let chain = order::commit_chain(&self.dag, self.last_committed, leader_ref, |r| {
            schedule.leader(r)
        });
        let ordered = order::causal_order(&mut self.dag, &chain);
        for vref in ordered {
            let Some(v) = self.dag.get(&vref) else {
                continue;
            };
            let (block_digest, block_bytes, block_tx_count) =
                (v.block_digest, v.block_bytes, v.block_tx_count);
            // Epoch rotation decides at fixed positions of the agreed
            // sequence: decide *before* folding this vertex into the
            // liveness table, so every party votes on identical state.
            self.decide_epochs_up_to(vref.round, now);
            self.committed_round_by[vref.source.idx()] =
                self.committed_round_by[vref.source.idx()].max(vref.round.0 + 1);
            let sequence = self.next_commit_seq();
            if self.storage.is_some() {
                self.log_wal(&clanbft_storage::WalRecord::Committed {
                    sequence,
                    vertex: vref,
                    block_digest,
                    block_tx_count,
                    leader_round: round,
                });
            }
            self.cfg.telemetry.event(
                now,
                self.cfg.me,
                Event::VertexCommitted {
                    round: vref.round,
                    source: vref.source,
                    leader: self.schedule.leader_vertex(vref.round) == vref,
                    sequence,
                },
            );
            self.cfg.telemetry.add(counters::COMMIT_VERTICES, 1);
            self.committed_log.push(CommittedVertex {
                sequence,
                vertex: vref,
                block_digest,
                block_bytes,
                block_tx_count,
                committed_at: now,
                leader_round: round,
            });
            if self.executor.is_some()
                && self
                    .rbc
                    .config()
                    .topology_at(vref.round)
                    .receives_full(self.cfg.me, vref.source)
            {
                self.exec_queue.push_back(vref);
            }
            // Commit feedback for our own proposals: closed-loop clients
            // submit their next transaction the moment the previous commits.
            if vref.source == self.cfg.me {
                if let Some(ingress) = self.ingress.as_mut() {
                    ingress.on_committed(vref, now);
                }
            }
        }
        self.last_committed = Some(round);
        self.try_execute(now);
        self.garbage_collect();
        self.maybe_checkpoint();
    }

    pub(crate) fn next_commit_seq(&self) -> u64 {
        self.commit_seq_base + self.committed_log.len() as u64
    }

    fn try_execute(&mut self, now: Micros) {
        let Some(executor) = self.executor.as_mut() else {
            return;
        };
        while let Some(front) = self.exec_queue.front().copied() {
            let Some(block) = self.blocks.get(&front) else {
                break; // Block still downloading; execution lags consensus.
            };
            executor.execute(front, block, now);
            self.exec_queue.pop_front();
        }
    }

    fn garbage_collect(&mut self) {
        let Some(depth) = self.cfg.gc_depth else {
            return;
        };
        let Some(lc) = self.last_committed else {
            return;
        };
        if lc.0 <= depth {
            return;
        }
        let horizon = Round(lc.0 - depth);
        // Never collect blocks still queued for execution.
        let exec_floor = self.exec_queue.front().map(|r| r.round).unwrap_or(horizon);
        let horizon = horizon.min(exec_floor);
        self.dag.prune_below(horizon);
        self.rbc.prune_below(horizon);
        self.votes.prune_below(horizon);
        self.timeouts.prune_below(horizon);
        self.accepted.retain(|r, _| r.round >= horizon);
        self.blocks.retain(|r, _| r.round >= horizon);
        self.late_arrivals.retain(|r| r.round >= horizon);
        self.certs_formed.retain(|r, _| *r >= horizon);
        // Evidence records stay (they are the audit trail, already capped);
        // only their dedup keys are pruned with the rest of the round state.
        self.evidence_keys.retain(|(r, _)| *r >= horizon);
    }

    // --- round advancement ---------------------------------------------------

    pub(crate) fn try_advance(&mut self, ctx: &mut Ctx<ConsensusMsg>) {
        loop {
            let r = self.current_round;
            if self.dag.round_count(r) < self.cfg.tribe.quorum() {
                return;
            }
            let leader_live = self.dag.get(&self.schedule.leader_vertex(r)).is_some();
            if !leader_live && !self.certs_formed.contains_key(&r) {
                return;
            }
            let next = r.next();
            self.current_round = next;
            // Advance the RBC admission window even when this node does not
            // broadcast in `next` (e.g. past `max_round`).
            self.rbc.note_round(next);
            self.cfg
                .telemetry
                .event(ctx.now(), self.cfg.me, Event::RoundEntered { round: next });
            self.sample_gauges();
            let mut fx = Effects::at(ctx.now());
            self.propose(next, &mut fx, ctx.now());
            self.flush(fx, ctx);
            ctx.set_timer(self.cfg.timeout, next.0);
        }
    }

    /// Samples bounded-buffer occupancy into gauges, once per round entry.
    /// The flight recorder logs these samples; a post-mortem correlates a
    /// stall with whichever buffer was filling when it happened.
    fn sample_gauges(&self) {
        let tel = &self.cfg.telemetry;
        if !tel.enabled() {
            return;
        }
        let rbc = self.rbc.buffer_stats();
        tel.gauge(counters::BUF_RBC_INSTANCES, rbc.instances);
        tel.gauge(counters::BUF_RBC_ECHO_DIGESTS, rbc.echo_digests);
        tel.gauge(counters::BUF_RBC_PENDING_PULLS, rbc.pending_pulls);
        tel.gauge(counters::BUF_DAG_PENDING, self.dag.pending_count() as u64);
        tel.gauge(counters::BUF_DAG_ROUNDS, self.dag.round_span() as u64);
        tel.gauge(
            counters::BUF_EVIDENCE_BACKLOG,
            (self.evidence.len() as u64).saturating_add(rbc.evidence_backlog),
        );
        if let Some(ingress) = &self.ingress {
            tel.gauge(counters::BUF_MEMPOOL_DEPTH, ingress.pool().depth() as u64);
        }
    }

    // --- effects plumbing -----------------------------------------------------

    /// Applies RBC effects: charges, consensus events, and outgoing packets.
    pub(crate) fn flush(&mut self, fx: Effects<MergedPayload>, ctx: &mut Ctx<ConsensusMsg>) {
        let mut queue = vec![fx];
        while let Some(fx) = queue.pop() {
            ctx.charge(fx.charge);
            let mut extra_msgs = Vec::new();
            for ev in fx.events {
                let mut nested = Effects::at(ctx.now());
                match ev {
                    RbcEvent::Certified {
                        source,
                        round,
                        digest,
                    } => {
                        // Act as soon as the vertex is certified, even if
                        // the block is still in flight (paper §5).
                        if let Some(meta) = self.rbc.meta_of(round, source) {
                            if MergedPayload::meta_digest(&meta) == digest {
                                self.process_vertex(meta, &mut nested, ctx.now(), &mut extra_msgs);
                            }
                        }
                    }
                    RbcEvent::DeliverFull {
                        source,
                        round,
                        payload,
                    } => {
                        let vref = VertexRef { round, source };
                        self.blocks.insert(vref, Arc::clone(&payload.block));
                        self.process_vertex(
                            Arc::clone(&payload.vertex),
                            &mut nested,
                            ctx.now(),
                            &mut extra_msgs,
                        );
                        self.try_execute(ctx.now());
                    }
                    RbcEvent::DeliverMeta {
                        source: _,
                        round: _,
                        meta,
                    } => {
                        self.process_vertex(meta, &mut nested, ctx.now(), &mut extra_msgs);
                    }
                    RbcEvent::EchoQuorum { .. } => {}
                }
                if !nested.out.is_empty()
                    || !nested.events.is_empty()
                    || !nested.timers.is_empty()
                    || nested.charge > Micros::ZERO
                {
                    queue.push(nested);
                }
            }
            for (to, pkt) in fx.out {
                ctx.send(to, ConsensusMsg::Rbc(pkt));
            }
            for (delay, token) in fx.timers {
                ctx.set_timer(delay, token);
            }
            for msg in extra_msgs {
                // Votes go to everyone, ourselves included (loopback).
                ctx.multicast(self.cfg.tribe.parties(), msg);
            }
        }
        self.absorb_rbc_evidence();
        self.try_advance(ctx);
    }

    fn on_vote(
        &mut self,
        from: PartyId,
        round: Round,
        vertex_id: Digest,
        sig: clanbft_crypto::Signature,
        ctx: &mut Ctx<ConsensusMsg>,
    ) {
        let _prof = clanbft_profiler::scope("consensus.vote");
        if !self.admit_round(round) {
            return;
        }
        ctx.charge(self.cfg.cost.aggregate(1));
        if self.cfg.verify_sigs
            && !self
                .auth
                .verify_digest(from.idx(), &vote_digest(round, &vertex_id), &sig)
        {
            self.cfg.telemetry.add(counters::REJECTED_BAD_SIG, 1);
            return;
        }
        // A vote from a party that already announced a timeout for the same
        // round breaks the vote/no-vote exclusivity honest nodes maintain.
        if self.timeouts.announced(round, from) {
            self.record_evidence(
                Evidence::VoteTimeoutConflict { round, party: from },
                ctx.now(),
            );
            return;
        }
        match self.votes.record(round, vertex_id, from) {
            VoteOutcome::New(count) => {
                if count >= self.cfg.tribe.quorum() {
                    self.try_commit(round, ctx.now());
                }
            }
            VoteOutcome::Duplicate => {
                self.cfg.telemetry.add(counters::REJECTED_DUPLICATE, 1);
            }
            VoteOutcome::Conflict { first } => {
                self.record_evidence(
                    Evidence::DoubleVote {
                        round,
                        voter: from,
                        first,
                        second: vertex_id,
                    },
                    ctx.now(),
                );
            }
        }
    }

    fn on_timeout_msg(
        &mut self,
        from: PartyId,
        round: Round,
        timeout_sig: clanbft_crypto::Signature,
        no_vote_sig: clanbft_crypto::Signature,
        ctx: &mut Ctx<ConsensusMsg>,
    ) {
        let _prof = clanbft_profiler::scope("consensus.timeout");
        if !self.admit_round(round) {
            return;
        }
        ctx.charge(self.cfg.cost.aggregate(2));
        if self.cfg.verify_sigs {
            let ok = self
                .auth
                .verify_digest(from.idx(), &timeout_digest(round), &timeout_sig)
                && self
                    .auth
                    .verify_digest(from.idx(), &no_vote_digest(round), &no_vote_sig);
            if !ok {
                self.cfg.telemetry.add(counters::REJECTED_BAD_SIG, 1);
                return;
            }
        }
        // The mirror of the check in `on_vote`: a timeout announcement from
        // a party whose vote we already counted is misbehaviour.
        if self.votes.voted(round, from).is_some() {
            self.record_evidence(
                Evidence::VoteTimeoutConflict { round, party: from },
                ctx.now(),
            );
            return;
        }
        let Some(count) = self.timeouts.record(round, from, timeout_sig, no_vote_sig) else {
            self.cfg.telemetry.add(counters::REJECTED_DUPLICATE, 1);
            return;
        };
        let quorum = self.cfg.tribe.quorum();
        if count >= quorum && !self.certs_formed.contains_key(&round) {
            let collected = self.timeouts.round(round).expect("just recorded");
            ctx.charge(self.cfg.cost.aggregate(count) + self.cfg.cost.agg_verify(count));
            let n = self.cfg.tribe.n();
            let tc = TimeoutCert::new(round, n, &collected.timeout_sigs);
            let nvc = NoVoteCert::new(round, n, &collected.no_vote_sigs);
            self.certs_formed.insert(round, (tc, nvc));
            self.cfg
                .telemetry
                .event(ctx.now(), self.cfg.me, Event::TimeoutCertFormed { round });
            self.cfg
                .telemetry
                .event(ctx.now(), self.cfg.me, Event::NoVoteCertFormed { round });
            self.try_advance(ctx);
        }
    }
}

impl Protocol<ConsensusMsg> for SailfishNode {
    fn on_start(&mut self, ctx: &mut Ctx<ConsensusMsg>) {
        self.cfg.telemetry.event(
            ctx.now(),
            self.cfg.me,
            Event::RoundEntered {
                round: Round::GENESIS,
            },
        );
        let mut fx = Effects::at(ctx.now());
        self.propose(Round::GENESIS, &mut fx, ctx.now());
        self.flush(fx, ctx);
        ctx.set_timer(self.cfg.timeout, 0);
    }

    fn on_message(&mut self, from: PartyId, msg: ConsensusMsg, ctx: &mut Ctx<ConsensusMsg>) {
        match msg {
            ConsensusMsg::Rbc(pkt) => {
                let mut fx = Effects::at(ctx.now());
                self.rbc.handle(from, pkt, &mut fx);
                self.flush(fx, ctx);
            }
            ConsensusMsg::Vote {
                round,
                vertex_id,
                sig,
            } => {
                self.on_vote(from, round, vertex_id, sig, ctx);
            }
            ConsensusMsg::Timeout {
                round,
                timeout_sig,
                no_vote_sig,
            } => {
                self.on_timeout_msg(from, round, timeout_sig, no_vote_sig, ctx);
            }
            ConsensusMsg::StateRequest {
                from_round,
                next_seq,
            } => {
                self.on_state_request(from, from_round, next_seq, ctx);
            }
            // The snapshot header is informational (it shows up in traces);
            // chunk arrival and the `last` flag drive the client side.
            ConsensusMsg::StateSnapshot { .. } => {}
            ConsensusMsg::StateChunk {
                from_round,
                seq,
                last,
                vertices,
                committed,
            } => {
                self.on_state_chunk(from, from_round, seq, last, vertices, committed, ctx);
            }
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<ConsensusMsg>) {
        // Pull-retry timers live in their own token namespace (high bit
        // set), disjoint from the plain round numbers used below.
        if let Some((round, source)) = parse_retry_token(token) {
            let mut fx = Effects::at(ctx.now());
            self.rbc.on_retry(round, source, &mut fx);
            self.flush(fx, ctx);
            return;
        }
        let round = Round(token);
        // A round timer expiring with a state transfer still open means the
        // remaining responders are slow or down: settle for whatever `f+1`
        // of them already agree on and rejoin — liveness must not hinge on
        // prompt peers (commits are suppressed while the transfer is open).
        if self.catchup.is_some() {
            self.finish_catchup(ctx);
        }
        if round != self.current_round {
            return; // Stale timer; the round already advanced.
        }
        let leader_delivered = self
            .accepted
            .contains_key(&self.schedule.leader_vertex(round));
        if leader_delivered || self.voted.contains(&round) || self.no_voted.contains(&round) {
            return;
        }
        // Announce the timeout: sign both the TC statement (round
        // advancement) and the NVC statement (the next leader's license to
        // skip the edge). Having announced, this node must never vote for
        // this round's leader vertex — persisted first, so not even a crash
        // lets it forget the exclusivity.
        if self.storage.is_some() {
            self.log_wal(&clanbft_storage::WalRecord::NoVoted { round });
        }
        self.no_voted.insert(round);
        self.cfg
            .telemetry
            .event(ctx.now(), self.cfg.me, Event::TimeoutAnnounced { round });
        ctx.charge(self.cfg.cost.sign() * 2);
        let timeout_sig = self.auth.sign_digest(&timeout_digest(round));
        let no_vote_sig = self.auth.sign_digest(&no_vote_digest(round));
        ctx.multicast(
            self.cfg.tribe.parties(),
            ConsensusMsg::Timeout {
                round,
                timeout_sig,
                no_vote_sig,
            },
        );
    }

    fn on_restart(&mut self, ctx: &mut Ctx<ConsensusMsg>) {
        // Rebuild from scratch through the normal constructor: it reopens
        // the storage directory and replays checkpoint + WAL silently. The
        // wall clock (not simulated time) measures the rebuild cost.
        let started = std::time::Instant::now();
        let cfg = self.cfg.clone();
        let auth = Arc::clone(&self.auth);
        *self = SailfishNode::new(cfg, auth);
        self.post_restart(started, ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clanbft_crypto::{Registry, Scheme};
    use clanbft_rbc::ClanTopology;
    use clanbft_types::TribeParams;

    fn test_node(n: usize, txs: u32) -> (SailfishNode, Vec<Arc<Authenticator>>) {
        let tribe = TribeParams::new(n);
        let topology = Arc::new(ClanTopology::whole_tribe(tribe));
        let (registry, keypairs) = Registry::generate(Scheme::Keyed, n, 77);
        let auths: Vec<Arc<Authenticator>> = keypairs
            .into_iter()
            .enumerate()
            .map(|(i, kp)| Arc::new(Authenticator::new(i, kp, Arc::clone(&registry))))
            .collect();
        let mut cfg = NodeConfig::new(PartyId(0), topology);
        cfg.txs_per_proposal = txs;
        let node = SailfishNode::new(cfg, Arc::clone(&auths[0]));
        (node, auths)
    }

    fn bare_vertex(round: u64, source: u32, strong: Vec<VertexRef>) -> Vertex {
        Vertex {
            round: Round(round),
            source: PartyId(source),
            block_digest: Digest::of(&[round as u8, source as u8]),
            block_bytes: 0,
            block_tx_count: 0,
            strong_edges: strong,
            weak_edges: vec![],
            nvc: None,
            tc: None,
        }
    }

    fn full_edges(round: u64, n: u32) -> Vec<VertexRef> {
        (0..n)
            .map(|s| VertexRef {
                round: Round(round),
                source: PartyId(s),
            })
            .collect()
    }

    #[test]
    fn vertex_without_leader_edge_needs_certificate() {
        // n = 4, leader(0) = P0. A round-1 vertex whose strong edges skip
        // the round-0 leader must carry a TC; without one it is rejected.
        let (mut node, auths) = test_node(4, 0);
        let mut fx = Effects::new();
        // Leader edge present: accepted.
        let ok = bare_vertex(1, 1, full_edges(0, 4));
        assert!(node.validate_vertex(&ok, &mut fx));
        // Leader edge missing (P0 excluded), no TC: rejected. Source P2 is
        // not round 1's leader (P1), so the TC path applies.
        let missing = bare_vertex(
            1,
            2,
            vec![
                VertexRef {
                    round: Round(0),
                    source: PartyId(1),
                },
                VertexRef {
                    round: Round(0),
                    source: PartyId(2),
                },
                VertexRef {
                    round: Round(0),
                    source: PartyId(3),
                },
            ],
        );
        assert!(!node.validate_vertex(&missing, &mut fx));
        // Same vertex with a valid TC for round 0: accepted.
        let d = timeout_digest(Round(0));
        let pairs: Vec<_> = (0..3).map(|i| (i, auths[i].sign_digest(&d))).collect();
        let mut with_tc = missing.clone();
        with_tc.tc = Some(TimeoutCert::new(Round(0), 4, &pairs));
        assert!(node.validate_vertex(&with_tc, &mut fx));
        // A TC for the wrong round: rejected.
        let mut wrong_round = missing.clone();
        let d5 = timeout_digest(Round(5));
        let pairs5: Vec<_> = (0..3).map(|i| (i, auths[i].sign_digest(&d5))).collect();
        wrong_round.tc = Some(TimeoutCert::new(Round(5), 4, &pairs5));
        assert!(!node.validate_vertex(&wrong_round, &mut fx));
        // An undersized TC: rejected.
        let mut thin = missing.clone();
        thin.tc = Some(TimeoutCert::new(Round(0), 4, &pairs[..2]));
        assert!(!node.validate_vertex(&thin, &mut fx));
    }

    #[test]
    fn leader_vertex_needs_nvc_not_tc() {
        // n = 4: leader(1) = P1. P1's round-1 vertex without an edge to the
        // round-0 leader vertex needs an NVC (a TC does not suffice).
        let (mut node, auths) = test_node(4, 0);
        let mut fx = Effects::new();
        let edges = vec![
            VertexRef {
                round: Round(0),
                source: PartyId(1),
            },
            VertexRef {
                round: Round(0),
                source: PartyId(2),
            },
            VertexRef {
                round: Round(0),
                source: PartyId(3),
            },
        ];
        let bare = bare_vertex(1, 1, edges.clone());
        assert!(!node.validate_vertex(&bare, &mut fx), "no justification");
        let td = timeout_digest(Round(0));
        let tc_pairs: Vec<_> = (0..3).map(|i| (i, auths[i].sign_digest(&td))).collect();
        let mut with_tc_only = bare.clone();
        with_tc_only.tc = Some(TimeoutCert::new(Round(0), 4, &tc_pairs));
        assert!(
            !node.validate_vertex(&with_tc_only, &mut fx),
            "a TC alone must not license the next leader"
        );
        let nd = no_vote_digest(Round(0));
        let nvc_pairs: Vec<_> = (0..3).map(|i| (i, auths[i].sign_digest(&nd))).collect();
        let mut with_nvc = bare.clone();
        with_nvc.nvc = Some(NoVoteCert::new(Round(0), 4, &nvc_pairs));
        assert!(node.validate_vertex(&with_nvc, &mut fx));
    }

    #[test]
    fn malformed_shape_rejected() {
        let (mut node, _) = test_node(4, 0);
        let mut fx = Effects::new();
        // Too few strong edges for quorum 3.
        let thin = bare_vertex(1, 2, full_edges(0, 2));
        assert!(!node.validate_vertex(&thin, &mut fx));
    }

    #[test]
    fn build_block_spreads_creation_times() {
        let (mut node, _) = test_node(4, 100);
        node.last_proposal_at = Micros::ZERO;
        let block = node.build_block(Round(1), Micros::from_secs(4));
        assert_eq!(block.tx_count(), 100);
        assert_eq!(block.batches.len(), 4, "four sub-batches per proposal");
        let times: Vec<u64> = block.batches.iter().map(|b| b.created_at.0).collect();
        assert!(times.windows(2).all(|w| w[0] < w[1]), "{times:?}");
        assert_eq!(
            *times.last().unwrap(),
            3_500_000,
            "newest batch half a quarter back"
        );
        assert_eq!(times[0], 500_000, "oldest batch near the previous proposal");
        // Sequence numbers advance.
        let block2 = node.build_block(Round(2), Micros::from_secs(8));
        assert_eq!(block2.batches[0].first_seq, 100);
    }

    #[test]
    fn non_proposer_builds_empty_blocks() {
        let (mut node, _) = {
            let tribe = TribeParams::new(4);
            let topology = Arc::new(ClanTopology::whole_tribe(tribe));
            let (registry, keypairs) = Registry::generate(Scheme::Keyed, 4, 7);
            let auth = Arc::new(Authenticator::new(
                0,
                keypairs.into_iter().next().unwrap(),
                registry,
            ));
            let mut cfg = NodeConfig::new(PartyId(0), topology);
            cfg.txs_per_proposal = 500;
            cfg.is_block_proposer = false;
            (SailfishNode::new(cfg, auth), ())
        };
        let block = node.build_block(Round(1), Micros::from_secs(1));
        assert_eq!(block.tx_count(), 0);
        assert!(block.batches.is_empty());
    }
}
