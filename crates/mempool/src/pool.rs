//! The bounded, lane-prioritised transaction pool.
//!
//! Admission is at-most-once and gap-free per client: a submission must
//! carry exactly the client's next sequence number, so a committed prefix
//! of a client's transactions can never hide a hole. Memory is bounded on
//! three axes — queued transactions, queued payload bytes, and the
//! per-client sequence table — and every bound rejects with a counter
//! instead of growing (backpressure, never OOM).

use crate::ClientId;
use clanbft_telemetry::{counters, Telemetry};
use clanbft_types::Micros;
use std::collections::{HashMap, VecDeque};

/// Priority lane of a submission. Lower index drains first.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Default)]
pub enum Lane {
    /// Latency-sensitive traffic, drained before everything else.
    High = 0,
    /// The default lane.
    #[default]
    Normal = 1,
    /// Bulk traffic, drained only when the faster lanes are empty.
    Low = 2,
}

/// Number of lanes (array size for the per-lane queues).
pub const LANES: usize = 3;

/// One client submission presented for admission.
#[derive(Clone, Debug)]
pub struct Submission {
    /// The submitting client.
    pub client: ClientId,
    /// The client's sequence number for this transaction (must be exactly
    /// the next one the pool expects from this client).
    pub seq: u64,
    /// Wire size of the transaction in bytes.
    pub tx_bytes: u32,
    /// Priority lane.
    pub lane: Lane,
}

/// Why a submission was rejected. Every rejection ticks the matching
/// `mempool.rejected.*` counter.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AdmitError {
    /// The sequence number was already admitted (replay).
    Duplicate,
    /// The sequence number skips ahead of the expected one.
    Gap {
        /// The sequence number the pool expects from this client next.
        expected: u64,
    },
    /// The pool is at its transaction or byte capacity (backpressure).
    QueueFull,
    /// The per-client sequence table is at capacity and this client is new.
    ClientTableFull,
}

/// A transaction sitting in the pool.
#[derive(Clone, Debug)]
pub struct PendingTx {
    /// The submitting client.
    pub client: ClientId,
    /// The client's sequence number.
    pub seq: u64,
    /// Wire size in bytes.
    pub tx_bytes: u32,
    /// Admission time (queue-delay measurement starts here).
    pub arrived: Micros,
}

/// Capacity knobs. Every axis is a hard bound with reject-on-full
/// semantics.
#[derive(Clone, Copy, Debug)]
pub struct MempoolConfig {
    /// Maximum queued transactions across all lanes.
    pub capacity_txs: usize,
    /// Maximum queued transaction bytes across all lanes.
    pub capacity_bytes: usize,
    /// Maximum distinct clients tracked in the sequence table.
    pub max_clients: usize,
}

impl Default for MempoolConfig {
    fn default() -> MempoolConfig {
        MempoolConfig {
            capacity_txs: 200_000,
            capacity_bytes: 256 << 20,
            max_clients: 4_000_000,
        }
    }
}

/// Admission and drain statistics, readable without telemetry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MempoolStats {
    /// Transactions admitted.
    pub admitted: u64,
    /// Transactions pulled into proposals.
    pub pulled: u64,
    /// Rejections: replayed sequence number.
    pub rejected_duplicate: u64,
    /// Rejections: sequence number gap.
    pub rejected_gap: u64,
    /// Rejections: pool at capacity.
    pub rejected_full: u64,
    /// Rejections: client table at capacity.
    pub rejected_client_cap: u64,
}

impl MempoolStats {
    /// Total rejections across all causes.
    pub fn rejected(&self) -> u64 {
        self.rejected_duplicate + self.rejected_gap + self.rejected_full + self.rejected_client_cap
    }
}

/// The bounded transaction pool.
pub struct Mempool {
    cfg: MempoolConfig,
    lanes: [VecDeque<PendingTx>; LANES],
    queued_bytes: usize,
    next_seq: HashMap<u64, u64>,
    stats: MempoolStats,
    telemetry: Telemetry,
}

impl Mempool {
    /// An empty pool with the given bounds.
    pub fn new(cfg: MempoolConfig, telemetry: Telemetry) -> Mempool {
        Mempool {
            cfg,
            lanes: Default::default(),
            queued_bytes: 0,
            next_seq: HashMap::new(),
            stats: MempoolStats::default(),
            telemetry,
        }
    }

    /// Transactions currently queued across all lanes.
    pub fn depth(&self) -> usize {
        self.lanes.iter().map(VecDeque::len).sum()
    }

    /// Transaction bytes currently queued.
    pub fn queued_bytes(&self) -> usize {
        self.queued_bytes
    }

    /// True iff nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.lanes.iter().all(VecDeque::is_empty)
    }

    /// Admission/drain statistics so far.
    pub fn stats(&self) -> MempoolStats {
        self.stats
    }

    /// The next sequence number expected from `client` (0 if unseen).
    pub fn expected_seq(&self, client: ClientId) -> u64 {
        self.next_seq.get(&client.0).copied().unwrap_or(0)
    }

    /// Distinct clients tracked in the sequence table.
    pub fn tracked_clients(&self) -> usize {
        self.next_seq.len()
    }

    /// Admits one submission at time `now`, or rejects it with backpressure.
    ///
    /// Deliberately *not* wrapped in a profiler scope: admission runs per
    /// transaction, and a scope here would cost more than the work it
    /// measures. The load generator scopes its admission loops instead
    /// (`mempool.admit` at batch granularity in `loadgen`).
    pub fn admit(&mut self, sub: Submission, now: Micros) -> Result<(), AdmitError> {
        let expected = self.next_seq.get(&sub.client.0).copied();
        if expected.is_none() && self.next_seq.len() >= self.cfg.max_clients {
            self.stats.rejected_client_cap += 1;
            self.telemetry.add(counters::MEMPOOL_REJECTED_CLIENT_CAP, 1);
            return Err(AdmitError::ClientTableFull);
        }
        let expected = expected.unwrap_or(0);
        if sub.seq < expected {
            self.stats.rejected_duplicate += 1;
            self.telemetry.add(counters::MEMPOOL_REJECTED_DUPLICATE, 1);
            return Err(AdmitError::Duplicate);
        }
        if sub.seq > expected {
            self.stats.rejected_gap += 1;
            self.telemetry.add(counters::MEMPOOL_REJECTED_GAP, 1);
            return Err(AdmitError::Gap { expected });
        }
        if self.depth() >= self.cfg.capacity_txs
            || self.queued_bytes + sub.tx_bytes as usize > self.cfg.capacity_bytes
        {
            self.stats.rejected_full += 1;
            self.telemetry.add(counters::MEMPOOL_REJECTED_FULL, 1);
            return Err(AdmitError::QueueFull);
        }
        self.next_seq.insert(sub.client.0, expected + 1);
        self.queued_bytes += sub.tx_bytes as usize;
        self.lanes[sub.lane as usize].push_back(PendingTx {
            client: sub.client,
            seq: sub.seq,
            tx_bytes: sub.tx_bytes,
            arrived: now,
        });
        self.stats.admitted += 1;
        self.telemetry.add(counters::MEMPOOL_ADMITTED, 1);
        Ok(())
    }

    /// Pulls up to `max_txs` transactions in priority order (high lane
    /// first, FIFO within a lane), recording each transaction's queueing
    /// delay.
    pub fn pull(&mut self, max_txs: usize, now: Micros) -> Vec<PendingTx> {
        let mut out = Vec::with_capacity(max_txs.min(self.depth()));
        for lane in &mut self.lanes {
            while out.len() < max_txs {
                let Some(tx) = lane.pop_front() else { break };
                self.queued_bytes -= tx.tx_bytes as usize;
                self.telemetry.record(
                    counters::MEMPOOL_QUEUE_DELAY,
                    now.saturating_sub(tx.arrived).0,
                );
                out.push(tx);
            }
        }
        self.stats.pulled += out.len() as u64;
        self.telemetry
            .add(counters::MEMPOOL_PULLED, out.len() as u64);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sub(client: u64, seq: u64) -> Submission {
        Submission {
            client: ClientId(client),
            seq,
            tx_bytes: 512,
            lane: Lane::Normal,
        }
    }

    #[test]
    fn admission_is_gap_free_and_at_most_once() {
        let mut p = Mempool::new(MempoolConfig::default(), Telemetry::null());
        assert_eq!(p.admit(sub(1, 0), Micros(1)), Ok(()));
        assert_eq!(p.admit(sub(1, 0), Micros(2)), Err(AdmitError::Duplicate));
        assert_eq!(
            p.admit(sub(1, 5), Micros(3)),
            Err(AdmitError::Gap { expected: 1 })
        );
        assert_eq!(p.admit(sub(1, 1), Micros(4)), Ok(()));
        assert_eq!(p.depth(), 2);
        assert_eq!(p.stats().admitted, 2);
        assert_eq!(p.stats().rejected_duplicate, 1);
        assert_eq!(p.stats().rejected_gap, 1);
        assert_eq!(p.expected_seq(ClientId(1)), 2);
    }

    #[test]
    fn capacity_backpressure_rejects_without_growing() {
        let cfg = MempoolConfig {
            capacity_txs: 2,
            capacity_bytes: usize::MAX,
            max_clients: 100,
        };
        let mut p = Mempool::new(cfg, Telemetry::null());
        assert_eq!(p.admit(sub(1, 0), Micros(0)), Ok(()));
        assert_eq!(p.admit(sub(2, 0), Micros(0)), Ok(()));
        assert_eq!(p.admit(sub(3, 0), Micros(0)), Err(AdmitError::QueueFull));
        assert_eq!(p.depth(), 2);
        assert_eq!(p.stats().rejected_full, 1);
        // A rejected submission does not burn the client's sequence number:
        // the same (client, seq) is admitted once space frees up.
        p.pull(1, Micros(1));
        assert_eq!(p.admit(sub(3, 0), Micros(2)), Ok(()));
    }

    #[test]
    fn byte_capacity_is_enforced() {
        let cfg = MempoolConfig {
            capacity_txs: usize::MAX,
            capacity_bytes: 1000,
            max_clients: 100,
        };
        let mut p = Mempool::new(cfg, Telemetry::null());
        assert_eq!(p.admit(sub(1, 0), Micros(0)), Ok(()));
        assert_eq!(p.admit(sub(2, 0), Micros(0)), Err(AdmitError::QueueFull));
        assert_eq!(p.queued_bytes(), 512);
    }

    #[test]
    fn client_table_is_bounded() {
        let cfg = MempoolConfig {
            capacity_txs: usize::MAX,
            capacity_bytes: usize::MAX,
            max_clients: 2,
        };
        let mut p = Mempool::new(cfg, Telemetry::null());
        assert_eq!(p.admit(sub(1, 0), Micros(0)), Ok(()));
        assert_eq!(p.admit(sub(2, 0), Micros(0)), Ok(()));
        assert_eq!(
            p.admit(sub(3, 0), Micros(0)),
            Err(AdmitError::ClientTableFull)
        );
        // Known clients keep working at the cap.
        assert_eq!(p.admit(sub(1, 1), Micros(0)), Ok(()));
        assert_eq!(p.tracked_clients(), 2);
    }

    #[test]
    fn lanes_drain_in_priority_order() {
        let mut p = Mempool::new(MempoolConfig::default(), Telemetry::null());
        for (i, lane) in [Lane::Low, Lane::High, Lane::Normal, Lane::High]
            .into_iter()
            .enumerate()
        {
            p.admit(
                Submission {
                    client: ClientId(i as u64),
                    seq: 0,
                    tx_bytes: 8,
                    lane,
                },
                Micros(i as u64),
            )
            .unwrap();
        }
        let pulled: Vec<u64> = p.pull(10, Micros(10)).iter().map(|t| t.client.0).collect();
        // High lane FIFO (clients 1, 3), then normal (2), then low (0).
        assert_eq!(pulled, vec![1, 3, 2, 0]);
        assert!(p.is_empty());
        assert_eq!(p.queued_bytes(), 0);
    }

    #[test]
    fn pull_respects_the_cap_and_counts_delay() {
        let (tel, rec) = Telemetry::mem();
        let mut p = Mempool::new(MempoolConfig::default(), tel);
        for c in 0..5 {
            p.admit(sub(c, 0), Micros(100)).unwrap();
        }
        let got = p.pull(3, Micros(400));
        assert_eq!(got.len(), 3);
        assert_eq!(p.depth(), 2);
        let h = rec.histogram(counters::MEMPOOL_QUEUE_DELAY).unwrap();
        assert_eq!(h.count(), 3);
        assert_eq!(rec.counter(counters::MEMPOOL_PULLED), 3);
        assert_eq!(rec.counter(counters::MEMPOOL_ADMITTED), 5);
    }
}
