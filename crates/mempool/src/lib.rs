//! Client-facing transaction ingress for the clanbft stack (zero external
//! deps).
//!
//! Everything upstream of consensus used to be synthetic: proposers
//! invented `txs_per_proposal` transactions out of thin air at each
//! proposal. This crate replaces that with a real ingress path the paper's
//! throughput story can be measured against:
//!
//! * [`pool`] — the bounded [`Mempool`]: at-most-once, gap-free admission
//!   keyed by per-client sequence numbers, three priority [`Lane`]s, and
//!   hard caps on queued transactions, queued bytes and tracked clients —
//!   every bound rejects with a `mempool.rejected.*` counter instead of
//!   growing (backpressure, never OOM).
//! * [`sizer`] — the feedback-driven [`BatchSizer`]: proposals pull
//!   whatever is queued (never waiting to fill a batch) under an adaptive
//!   cap that grows when proposals drain it (deep queue → throughput bias)
//!   and shrinks when they under-fill it (shallow queue → latency bias).
//! * [`loadgen`] — [`WorkloadSpec`] and the per-proposer
//!   [`ClientIngress`] driving it all: synthetic (the historical model),
//!   open-loop (fixed rate, Zipf-skewed millions of clients — exercises
//!   backpressure) and closed-loop (fixed outstanding per client,
//!   resubmitting on commit — every admitted transaction must commit
//!   exactly once).
//!
//! The consensus node drives the ingress with four calls per proposal
//! cycle: `poll` (advance arrivals), `pull` (sizer-chosen drain),
//! `note_proposed` (bind the pull to its vertex) and `on_committed`
//! (closed-loop commit feedback). [`plan_batches`] turns a pull into
//! `TxBatch`-shaped runs grouped by arrival stamp.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod loadgen;
pub mod pool;
pub mod sizer;

pub use loadgen::{plan_batches, BatchPlan, ClientIngress, WorkloadSpec, ZipfGen};
pub use pool::{
    AdmitError, Lane, Mempool, MempoolConfig, MempoolStats, PendingTx, Submission, LANES,
};
pub use sizer::{BatchSizer, SizerConfig};

/// Identifier of a simulated client (node-local namespace: two proposers'
/// client 7 are different clients).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ClientId(pub u64);
