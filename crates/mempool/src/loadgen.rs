//! Workload generation and the per-node client ingress.
//!
//! [`ClientIngress`] is the proposer-side front door: it owns a bounded
//! [`Mempool`], a [`BatchSizer`], and a workload generator, and exposes the
//! four hooks the consensus node drives —
//!
//! 1. [`ClientIngress::poll`] — advance simulated client arrivals up to the
//!    current time and admit them (with backpressure);
//! 2. [`ClientIngress::pull`] — let the sizer choose a batch size from
//!    queue depth and proposal cadence, then drain that many transactions;
//! 3. [`ClientIngress::note_proposed`] — bind the pulled transactions to
//!    the vertex that carries them (in-flight tracking);
//! 4. [`ClientIngress::on_committed`] — commit feedback: closed-loop
//!    clients submit their next transaction the moment the previous one
//!    commits.
//!
//! Three workloads are provided. `Synthetic` reproduces the repo's
//! historical fixed-size payload generation (arrivals at the four quarter
//! midpoints of the inter-proposal gap). `OpenLoop` submits at a fixed
//! rate from a Zipf-skewed population of simulated clients regardless of
//! commit progress — the workload that exercises backpressure. `ClosedLoop`
//! keeps a fixed number of outstanding transactions per client — the
//! workload whose every admitted transaction must commit exactly once.

use crate::pool::{Lane, Mempool, MempoolConfig, PendingTx, Submission};
use crate::sizer::{BatchSizer, SizerConfig};
use crate::ClientId;
use clanbft_crypto::ClanRng;
use clanbft_telemetry::{counters, Telemetry};
use clanbft_types::{Micros, VertexRef};
use std::collections::HashMap;

/// The synthetic workload's single implicit client.
const SYNTHETIC_CLIENT: ClientId = ClientId(0);

/// Number of arrival stamps the synthetic workload spreads a proposal's
/// transactions across (matches the historical quarter-midpoint model).
const SYNTHETIC_QUARTERS: u32 = 4;

/// What traffic a proposer's ingress generates.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WorkloadSpec {
    /// Fixed transaction count per proposal, arrivals spread across the
    /// quarter midpoints of the inter-proposal gap (the repo's historical
    /// synthetic model; bypasses the dynamic sizer).
    Synthetic {
        /// Transactions generated per proposal.
        txs_per_proposal: u32,
    },
    /// Fixed aggregate submission rate from a Zipf-skewed client
    /// population, independent of commit progress.
    OpenLoop {
        /// Aggregate submission rate (transactions per second) at this node.
        rate_tps: f64,
        /// Simulated client population size.
        clients: u64,
        /// Zipf skew exponent (0 = uniform; YCSB uses 0.99).
        zipf_s: f64,
        /// Stop generating arrivals once this round is reached, letting the
        /// queue drain before the run ends.
        stop_at_round: u64,
    },
    /// Every client keeps `outstanding` transactions in flight, submitting
    /// the next one when the previous commits.
    ClosedLoop {
        /// Simulated client population size.
        clients: u64,
        /// Transactions each client keeps outstanding.
        outstanding: u32,
        /// Stop resubmitting once this round is reached, letting the
        /// queue drain before the run ends.
        stop_at_round: u64,
    },
}

/// YCSB-style Zipf-distributed index generator over `0..n`.
///
/// Rank 0 is the hottest client. Uses the Gray et al. rejection-free
/// inversion with a precomputed zeta sum, so drawing is O(1) after an O(n)
/// setup.
#[derive(Clone, Debug)]
pub struct ZipfGen {
    n: u64,
    zetan: f64,
    eta: f64,
    alpha: f64,
    half_pow_s: f64,
}

impl ZipfGen {
    /// A generator over `0..n` with skew exponent `s` (`s = 0` is uniform).
    pub fn new(n: u64, s: f64) -> ZipfGen {
        let n = n.max(1);
        // The inversion has a pole at s = 1; nudge off it.
        let s = if (s - 1.0).abs() < 1e-6 { 0.999_999 } else { s };
        let zetan = zeta(n, s);
        let zeta2 = zeta(2.min(n), s);
        let alpha = 1.0 / (1.0 - s);
        let eta = if n > 1 {
            (1.0 - (2.0 / n as f64).powf(1.0 - s)) / (1.0 - zeta2 / zetan)
        } else {
            0.0
        };
        ZipfGen {
            n,
            zetan,
            eta,
            alpha,
            half_pow_s: 0.5f64.powf(s),
        }
    }

    /// Draws the next index in `0..n`.
    pub fn next(&self, rng: &mut ClanRng) -> u64 {
        let u = rng.next_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + self.half_pow_s {
            return 1;
        }
        let v = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        v.min(self.n - 1)
    }
}

/// Truncated zeta sum `Σ_{i=1..n} i^{-s}`.
fn zeta(n: u64, s: f64) -> f64 {
    let mut sum = 0.0;
    for i in 1..=n {
        sum += 1.0 / (i as f64).powf(s);
    }
    sum
}

/// A planned sub-batch: a run of pulled transactions sharing an arrival
/// stamp and wire size, ready to become one `TxBatch`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchPlan {
    /// Transactions in the run.
    pub count: u32,
    /// Wire size of each transaction.
    pub tx_bytes: u32,
    /// Earliest arrival stamp in the run (latency measurement anchor).
    pub created_at: Micros,
}

/// Coalesces pulled transactions into at most `max_batches` plans.
///
/// Consecutive transactions sharing `(arrived, tx_bytes)` form one run; if
/// that leaves more runs than allowed, adjacent same-size runs are merged
/// (earliest arrival stamp wins, biasing measured latency pessimistically).
pub fn plan_batches(pulled: &[PendingTx], max_batches: usize) -> Vec<BatchPlan> {
    let _prof = clanbft_profiler::scope("mempool.plan_batches");
    let mut plans: Vec<BatchPlan> = Vec::new();
    for tx in pulled {
        match plans.last_mut() {
            Some(p) if p.created_at == tx.arrived && p.tx_bytes == tx.tx_bytes => p.count += 1,
            _ => plans.push(BatchPlan {
                count: 1,
                tx_bytes: tx.tx_bytes,
                created_at: tx.arrived,
            }),
        }
    }
    let max_batches = max_batches.max(1);
    while plans.len() > max_batches {
        let Some(i) = (0..plans.len() - 1).find(|&i| plans[i].tx_bytes == plans[i + 1].tx_bytes)
        else {
            break;
        };
        let next = plans.remove(i + 1);
        plans[i].count += next.count;
        plans[i].created_at = plans[i].created_at.min(next.created_at);
    }
    plans
}

/// The proposer-side client ingress: workload generator, bounded pool,
/// dynamic sizer and in-flight tracking, driven by the consensus node.
pub struct ClientIngress {
    workload: WorkloadSpec,
    tx_bytes: u32,
    pool: Mempool,
    sizer: BatchSizer,
    rng: ClanRng,
    zipf: Option<ZipfGen>,
    /// Next sequence number each simulated client will submit. Advanced
    /// only on successful admission, so a backpressured client retries the
    /// same sequence number later instead of leaving a permanent gap.
    client_next: HashMap<u64, u64>,
    /// Transactions pulled for a proposal that has not committed yet,
    /// keyed by the carrying vertex.
    in_flight: HashMap<VertexRef, Vec<(ClientId, u64)>>,
    /// Pulled but not yet bound to a vertex (between `pull` and
    /// `note_proposed`).
    last_pulled: Vec<PendingTx>,
    /// Fractional open-loop arrivals carried into the next poll window.
    carry: f64,
    seeded: bool,
    stopped: bool,
    telemetry: Telemetry,
}

impl ClientIngress {
    /// An ingress for one proposer. `seed` derives the deterministic
    /// arrival randomness; `tx_bytes` is the simulated wire size of every
    /// generated transaction.
    pub fn new(
        workload: WorkloadSpec,
        tx_bytes: u32,
        pool_cfg: MempoolConfig,
        sizer_cfg: SizerConfig,
        seed: u64,
        telemetry: Telemetry,
    ) -> ClientIngress {
        let zipf = match workload {
            WorkloadSpec::OpenLoop {
                clients, zipf_s, ..
            } => Some(ZipfGen::new(clients, zipf_s)),
            _ => None,
        };
        ClientIngress {
            workload,
            tx_bytes,
            pool: Mempool::new(pool_cfg, telemetry.clone()),
            sizer: BatchSizer::new(sizer_cfg),
            rng: ClanRng::seed_from_u64(seed),
            zipf,
            client_next: HashMap::new(),
            in_flight: HashMap::new(),
            last_pulled: Vec::new(),
            carry: 0.0,
            seeded: false,
            stopped: false,
            telemetry,
        }
    }

    /// The configured workload.
    pub fn workload(&self) -> WorkloadSpec {
        self.workload
    }

    /// The underlying pool (stats, depth, expected sequence numbers).
    pub fn pool(&self) -> &Mempool {
        &self.pool
    }

    /// The dynamic sizer (current cap, smoothed cadence).
    pub fn sizer(&self) -> &BatchSizer {
        &self.sizer
    }

    /// Transactions pulled into proposals that have not committed yet.
    pub fn in_flight_txs(&self) -> usize {
        self.in_flight.values().map(Vec::len).sum::<usize>() + self.last_pulled.len()
    }

    /// True once the workload passed its stop round and generates nothing.
    pub fn stopped(&self) -> bool {
        self.stopped
    }

    /// Advances simulated client arrivals over `(from, to]` and admits
    /// them. `round` is the proposer's current round, used only to stop
    /// generation at the workload's configured stop round.
    pub fn poll(&mut self, from: Micros, to: Micros, round: u64) {
        let _prof = clanbft_profiler::scope("mempool.poll");
        match self.workload {
            WorkloadSpec::Synthetic { txs_per_proposal } => {
                self.poll_synthetic(from, to, txs_per_proposal);
            }
            WorkloadSpec::OpenLoop {
                rate_tps,
                stop_at_round,
                ..
            } => {
                if round >= stop_at_round {
                    self.stopped = true;
                }
                if !self.stopped {
                    self.poll_open_loop(from, to, rate_tps);
                }
            }
            WorkloadSpec::ClosedLoop {
                clients,
                outstanding,
                stop_at_round,
            } => {
                if round >= stop_at_round {
                    self.stopped = true;
                }
                if !self.seeded && !self.stopped {
                    self.seeded = true;
                    for c in 0..clients {
                        for _ in 0..outstanding {
                            self.submit(ClientId(c), Lane::Normal, to);
                        }
                    }
                }
            }
        }
    }

    /// Chooses a batch size from queue depth and proposal cadence, drains
    /// that many transactions, and returns them. The synthetic workload
    /// bypasses the sizer and drains everything (fixed-size proposals).
    pub fn pull(&mut self, now: Micros, gap_since_last: Micros) -> &[PendingTx] {
        let _prof = clanbft_profiler::scope("mempool.pull");
        let depth = self.pool.depth();
        let chosen = match self.workload {
            WorkloadSpec::Synthetic { .. } => depth,
            _ => self.sizer.choose(depth, gap_since_last) as usize,
        };
        let pulled = self.pool.pull(chosen, now);
        self.telemetry
            .record(counters::MEMPOOL_BATCH_SIZE, pulled.len() as u64);
        if let Some(occupancy) = (pulled.len() * 100).checked_div(chosen) {
            self.telemetry
                .record(counters::MEMPOOL_BATCH_OCCUPANCY, occupancy as u64);
        }
        self.telemetry
            .gauge(counters::BUF_MEMPOOL_DEPTH, self.pool.depth() as u64);
        self.last_pulled = pulled;
        &self.last_pulled
    }

    /// Binds the most recent pull to the vertex that carries it.
    pub fn note_proposed(&mut self, vref: VertexRef) {
        if self.last_pulled.is_empty() {
            return;
        }
        let entries: Vec<(ClientId, u64)> = self
            .last_pulled
            .drain(..)
            .map(|tx| (tx.client, tx.seq))
            .collect();
        self.in_flight.insert(vref, entries);
    }

    /// Commit feedback for one of this proposer's own vertices: releases
    /// its in-flight transactions, and — for closed-loop clients that have
    /// not been stopped — submits each client's next transaction at the
    /// commit time.
    pub fn on_committed(&mut self, vref: VertexRef, now: Micros) {
        let Some(entries) = self.in_flight.remove(&vref) else {
            return;
        };
        if self.stopped || !matches!(self.workload, WorkloadSpec::ClosedLoop { .. }) {
            return;
        }
        for (client, _seq) in entries {
            self.submit(client, Lane::Normal, now);
        }
    }

    /// Submits the client's next sequence number, advancing it only on
    /// admission (a rejected client retries the same number later).
    fn submit(&mut self, client: ClientId, lane: Lane, arrived: Micros) -> bool {
        let seq = *self.client_next.entry(client.0).or_insert(0);
        let ok = self
            .pool
            .admit(
                Submission {
                    client,
                    seq,
                    tx_bytes: self.tx_bytes,
                    lane,
                },
                arrived,
            )
            .is_ok();
        if ok {
            self.client_next.insert(client.0, seq + 1);
        }
        ok
    }

    /// Historical synthetic model: `t` transactions per proposal, arrivals
    /// at the quarter midpoints of the inter-proposal gap (so queueing
    /// delay averages half the gap, exactly as the old in-node generator
    /// stamped its sub-batches).
    fn poll_synthetic(&mut self, from: Micros, to: Micros, t: u32) {
        // Batch-granularity scope: one entry per poll covers the whole
        // admission loop (scoping `Mempool::admit` itself would cost more
        // than the admission it measures).
        let _prof = clanbft_profiler::scope("mempool.admit");
        let gap = to.saturating_sub(from);
        let base = t / SYNTHETIC_QUARTERS;
        let rem = t % SYNTHETIC_QUARTERS;
        for q in 0..SYNTHETIC_QUARTERS {
            let count = base + u32::from(q < rem);
            let age = gap.0 * (2 * u64::from(SYNTHETIC_QUARTERS - q) - 1)
                / (2 * u64::from(SYNTHETIC_QUARTERS));
            let arrived = to.saturating_sub(Micros(age));
            for _ in 0..count {
                self.submit(SYNTHETIC_CLIENT, Lane::Normal, arrived);
            }
        }
    }

    /// Open-loop arrivals: `rate_tps` evenly spaced over the window, with
    /// the fractional remainder carried forward so long runs hit the rate
    /// exactly. Clients are drawn Zipf-skewed; 10% of traffic rides the
    /// high-priority lane and 10% the low lane.
    fn poll_open_loop(&mut self, from: Micros, to: Micros, rate_tps: f64) {
        // Batch-granularity scope, mirroring `poll_synthetic`.
        let _prof = clanbft_profiler::scope("mempool.admit");
        let span = to.saturating_sub(from);
        let want = rate_tps * span.as_secs_f64() + self.carry;
        let n = want.floor() as u64;
        self.carry = want - n as f64;
        let zipf = self.zipf.clone().expect("open-loop has a zipf generator");
        for i in 0..n {
            let arrived = from + Micros(span.0 * i / n);
            let client = ClientId(zipf.next(&mut self.rng));
            let lane = match self.rng.next_f64() {
                r if r < 0.1 => Lane::High,
                r if r < 0.9 => Lane::Normal,
                _ => Lane::Low,
            };
            self.submit(client, lane, arrived);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clanbft_types::{PartyId, Round};

    fn vref(round: u64) -> VertexRef {
        VertexRef {
            round: Round(round),
            source: PartyId(0),
        }
    }

    fn ingress(workload: WorkloadSpec) -> ClientIngress {
        ClientIngress::new(
            workload,
            512,
            MempoolConfig::default(),
            SizerConfig::default(),
            7,
            Telemetry::null(),
        )
    }

    #[test]
    fn synthetic_reproduces_quarter_midpoint_batches() {
        let mut ing = ingress(WorkloadSpec::Synthetic {
            txs_per_proposal: 100,
        });
        // 4-second gap, as pinned by the historical node test.
        ing.poll(Micros(0), Micros::from_secs(4), 1);
        let pulled = ing
            .pull(Micros::from_secs(4), Micros::from_secs(4))
            .to_vec();
        assert_eq!(pulled.len(), 100);
        let plans = plan_batches(&pulled, 16);
        assert_eq!(plans.len(), 4);
        assert_eq!(
            plans.iter().map(|p| p.created_at.0).collect::<Vec<_>>(),
            vec![500_000, 1_500_000, 2_500_000, 3_500_000]
        );
        assert!(plans.iter().all(|p| p.count == 25 && p.tx_bytes == 512));
    }

    #[test]
    fn synthetic_splits_remainder_across_leading_quarters() {
        let mut ing = ingress(WorkloadSpec::Synthetic {
            txs_per_proposal: 10,
        });
        ing.poll(Micros(0), Micros::from_secs(4), 1);
        let pulled = ing
            .pull(Micros::from_secs(4), Micros::from_secs(4))
            .to_vec();
        let counts: Vec<u32> = plan_batches(&pulled, 16).iter().map(|p| p.count).collect();
        assert_eq!(counts, vec![3, 3, 2, 2]);
    }

    #[test]
    fn open_loop_hits_the_rate_with_fractional_carry() {
        let mut ing = ingress(WorkloadSpec::OpenLoop {
            rate_tps: 333.0,
            clients: 100,
            zipf_s: 0.99,
            stop_at_round: 1000,
        });
        // 100 windows of 10ms = 1s total → 333 arrivals (+/- one carry).
        for w in 0..100u64 {
            ing.poll(
                Micros::from_millis(w * 10),
                Micros::from_millis((w + 1) * 10),
                w,
            );
        }
        let admitted = ing.pool().stats().admitted;
        assert!(
            (332..=334).contains(&admitted),
            "expected ~333 arrivals, got {admitted}"
        );
    }

    #[test]
    fn open_loop_stops_generating_at_the_stop_round() {
        let mut ing = ingress(WorkloadSpec::OpenLoop {
            rate_tps: 10_000.0,
            clients: 10,
            zipf_s: 0.0,
            stop_at_round: 3,
        });
        ing.poll(Micros(0), Micros::from_millis(10), 1);
        let before = ing.pool().stats().admitted;
        assert!(before > 0);
        ing.poll(Micros::from_millis(10), Micros::from_millis(20), 3);
        assert!(ing.stopped());
        assert_eq!(ing.pool().stats().admitted, before);
    }

    #[test]
    fn zipf_skews_towards_low_ranks() {
        let zipf = ZipfGen::new(1000, 0.99);
        let mut rng = ClanRng::seed_from_u64(42);
        let mut hot = 0u32;
        let mut cold = 0u32;
        for _ in 0..10_000 {
            let v = zipf.next(&mut rng);
            assert!(v < 1000);
            if v < 10 {
                hot += 1;
            }
            if v >= 500 {
                cold += 1;
            }
        }
        assert!(
            hot > 3000,
            "zipf(0.99): top-1% of clients should draw >30% of traffic, got {hot}"
        );
        assert!(hot > cold * 3);
    }

    #[test]
    fn zipf_with_zero_skew_is_roughly_uniform() {
        let zipf = ZipfGen::new(10, 0.0);
        let mut rng = ClanRng::seed_from_u64(1);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[zipf.next(&mut rng) as usize] += 1;
        }
        for (i, c) in counts.iter().enumerate() {
            assert!((700..=1300).contains(c), "client {i} drew {c}/10000 at s=0");
        }
    }

    #[test]
    fn closed_loop_holds_outstanding_constant() {
        let mut ing = ingress(WorkloadSpec::ClosedLoop {
            clients: 50,
            outstanding: 2,
            stop_at_round: 100,
        });
        ing.poll(Micros(0), Micros(0), 0);
        assert_eq!(ing.pool().depth(), 100);
        // Pull a proposal, bind it, commit it: every pulled client submits
        // its next transaction, so queued + in-flight stays at 100.
        let mut now = Micros::from_millis(1);
        for round in 1..=20u64 {
            ing.poll(now, now + Micros::from_millis(1), round);
            now += Micros::from_millis(1);
            let pulled = ing.pull(now, Micros::from_millis(1)).len();
            if pulled > 0 {
                ing.note_proposed(vref(round));
                ing.on_committed(vref(round), now + Micros::from_millis(2));
            }
            assert_eq!(
                ing.pool().depth() + ing.in_flight_txs(),
                100,
                "round {round}: closed loop must conserve outstanding txs"
            );
        }
        assert!(ing.pool().stats().pulled > 0);
    }

    #[test]
    fn closed_loop_drains_after_the_stop_round() {
        let mut ing = ingress(WorkloadSpec::ClosedLoop {
            clients: 10,
            outstanding: 1,
            stop_at_round: 5,
        });
        ing.poll(Micros(0), Micros(0), 0);
        ing.poll(Micros(0), Micros(1), 6); // past the stop round
        let mut now = Micros(2);
        let mut round = 6;
        while ing.pool().depth() > 0 {
            let pulled = ing.pull(now, Micros(1)).len();
            assert!(pulled > 0, "sizer must keep draining a non-empty queue");
            ing.note_proposed(vref(round));
            ing.on_committed(vref(round), now);
            round += 1;
            now += Micros(1);
        }
        assert_eq!(ing.in_flight_txs(), 0);
        let stats = ing.pool().stats();
        assert_eq!(stats.admitted, stats.pulled);
        assert_eq!(stats.admitted, 10);
    }

    #[test]
    fn same_seed_same_arrivals() {
        let spec = WorkloadSpec::OpenLoop {
            rate_tps: 5000.0,
            clients: 1000,
            zipf_s: 0.9,
            stop_at_round: 100,
        };
        let mut a = ingress(spec);
        let mut b = ingress(spec);
        for w in 0..10u64 {
            a.poll(Micros(w * 1000), Micros((w + 1) * 1000), w);
            b.poll(Micros(w * 1000), Micros((w + 1) * 1000), w);
        }
        let pa = a.pull(Micros(10_000), Micros(1000)).to_vec();
        let pb = b.pull(Micros(10_000), Micros(1000)).to_vec();
        assert_eq!(pa.len(), pb.len());
        for (x, y) in pa.iter().zip(&pb) {
            assert_eq!((x.client, x.seq, x.arrived), (y.client, y.seq, y.arrived));
        }
    }

    #[test]
    fn plan_batches_merges_down_to_the_cap() {
        let txs: Vec<PendingTx> = (0..40)
            .map(|i| PendingTx {
                client: ClientId(i),
                seq: 0,
                tx_bytes: 256,
                arrived: Micros(i), // every tx a distinct stamp → 40 runs
            })
            .collect();
        let plans = plan_batches(&txs, 16);
        assert_eq!(plans.len(), 16);
        assert_eq!(plans.iter().map(|p| p.count).sum::<u32>(), 40);
        // Earliest stamp survives each merge.
        assert_eq!(plans[0].created_at, Micros(0));
    }

    #[test]
    fn plan_batches_never_mixes_wire_sizes() {
        let txs: Vec<PendingTx> = (0..4)
            .map(|i| PendingTx {
                client: ClientId(i),
                seq: 0,
                tx_bytes: if i % 2 == 0 { 128 } else { 512 },
                arrived: Micros(5),
            })
            .collect();
        let plans = plan_batches(&txs, 1);
        // Alternating sizes cannot merge below 4 runs even with cap 1.
        assert_eq!(plans.len(), 4);
        assert!(plans.iter().all(|p| p.count == 1));
    }
}
