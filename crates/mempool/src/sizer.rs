//! Feedback-driven dynamic batch sizing.
//!
//! The policy follows the febft observation that waiting to fill a fixed
//! batch is the wrong trade at low load: pull whatever is queued (minimum
//! one transaction) and propose immediately, while an adaptive cap bounds
//! how much a single proposal may carry. The cap reacts to observed demand:
//! when a proposal drains the cap completely the queue is deep and the cap
//! doubles (throughput-biased — amortise header and crypto cost over more
//! transactions); when proposals keep pulling far below the cap the queue
//! is shallow and the cap halves (latency-biased — no reason to let a
//! bigger batch accumulate). An EWMA of the time between proposals is kept
//! for introspection and exported through telemetry-facing accessors.

use clanbft_types::Micros;

/// Tuning knobs for [`BatchSizer`].
#[derive(Clone, Copy, Debug)]
pub struct SizerConfig {
    /// Smallest cap the sizer will shrink to (also the initial pull floor).
    pub min_batch: u32,
    /// Largest cap the sizer will grow to.
    pub max_batch: u32,
    /// Initial cap before any feedback arrives.
    pub initial_batch: u32,
}

impl Default for SizerConfig {
    fn default() -> SizerConfig {
        SizerConfig {
            min_batch: 8,
            max_batch: 4096,
            initial_batch: 64,
        }
    }
}

/// Adaptive batch-size controller.
#[derive(Clone, Debug)]
pub struct BatchSizer {
    cfg: SizerConfig,
    cap: u32,
    /// EWMA of time between proposals, in microseconds (0 until observed).
    ewma_gap_us: u64,
}

impl BatchSizer {
    /// A sizer starting at the configured initial cap.
    pub fn new(cfg: SizerConfig) -> BatchSizer {
        let cap = cfg.initial_batch.clamp(cfg.min_batch, cfg.max_batch);
        BatchSizer {
            cfg,
            cap,
            ewma_gap_us: 0,
        }
    }

    /// Current adaptive cap.
    pub fn cap(&self) -> u32 {
        self.cap
    }

    /// Smoothed time between proposals observed so far (microseconds).
    pub fn smoothed_gap_us(&self) -> u64 {
        self.ewma_gap_us
    }

    /// Chooses how many transactions the next proposal should pull, given
    /// the current queue depth and the time since the previous proposal,
    /// and feeds the outcome back into the adaptive cap.
    ///
    /// Returns 0 only when the queue is empty; otherwise at least 1 — the
    /// proposer never waits for a batch to fill.
    pub fn choose(&mut self, queue_depth: usize, gap_since_last: Micros) -> u32 {
        // EWMA with alpha = 1/4: new = old + (sample - old) / 4.
        if gap_since_last.0 > 0 {
            if self.ewma_gap_us == 0 {
                self.ewma_gap_us = gap_since_last.0;
            } else {
                let old = self.ewma_gap_us as i64;
                self.ewma_gap_us = (old + (gap_since_last.0 as i64 - old) / 4) as u64;
            }
        }
        let depth = u32::try_from(queue_depth).unwrap_or(u32::MAX);
        let chosen = depth.min(self.cap);

        // Feedback: a drained cap means demand exceeds supply — grow.
        // Persistent deep under-fill means demand is light — shrink, so the
        // next burst is proposed with low latency instead of accumulating.
        if depth >= self.cap {
            self.cap = (self.cap.saturating_mul(2)).min(self.cfg.max_batch);
        } else if depth < self.cap / 4 {
            self.cap = (self.cap / 2).max(self.cfg.min_batch);
        }
        chosen.max(u32::from(depth > 0))
    }
}

impl Default for BatchSizer {
    fn default() -> BatchSizer {
        BatchSizer::new(SizerConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_queue_chooses_zero_and_shrinks() {
        let mut s = BatchSizer::default();
        let start = s.cap();
        assert_eq!(s.choose(0, Micros::from_millis(10)), 0);
        assert!(s.cap() < start, "idle proposals shrink the cap");
    }

    #[test]
    fn never_waits_for_a_full_batch() {
        let mut s = BatchSizer::default();
        // One straggler in the queue is proposed immediately.
        assert_eq!(s.choose(1, Micros::from_millis(5)), 1);
    }

    #[test]
    fn grows_under_sustained_load() {
        let mut s = BatchSizer::new(SizerConfig {
            min_batch: 8,
            max_batch: 1024,
            initial_batch: 8,
        });
        // The queue always has more than the cap: cap doubles per proposal
        // until it hits the ceiling.
        let mut sizes = Vec::new();
        for _ in 0..10 {
            sizes.push(s.choose(100_000, Micros::from_millis(1)));
        }
        assert_eq!(sizes, vec![8, 16, 32, 64, 128, 256, 512, 1024, 1024, 1024]);
        assert_eq!(s.cap(), 1024);
    }

    #[test]
    fn shrinks_back_at_low_load() {
        let mut s = BatchSizer::new(SizerConfig {
            min_batch: 8,
            max_batch: 1024,
            initial_batch: 1024,
        });
        // Trickle load: two transactions per proposal gap.
        for _ in 0..16 {
            s.choose(2, Micros::from_millis(20));
        }
        assert_eq!(s.cap(), 8, "cap decays to the floor under trickle load");
        // And the trickle still goes out whole, immediately.
        assert_eq!(s.choose(2, Micros::from_millis(20)), 2);
    }

    #[test]
    fn ewma_tracks_proposal_cadence() {
        let mut s = BatchSizer::default();
        s.choose(10, Micros(1000));
        assert_eq!(s.smoothed_gap_us(), 1000);
        s.choose(10, Micros(2000));
        assert_eq!(s.smoothed_gap_us(), 1250);
        // Zero gaps (same-instant re-entry) don't poison the estimate.
        s.choose(10, Micros(0));
        assert_eq!(s.smoothed_gap_us(), 1250);
    }

    #[test]
    fn cap_respects_configured_bounds() {
        let mut s = BatchSizer::new(SizerConfig {
            min_batch: 4,
            max_batch: 16,
            initial_batch: 999,
        });
        assert_eq!(s.cap(), 16, "initial cap clamps into range");
        for _ in 0..8 {
            s.choose(1_000_000, Micros(1));
        }
        assert_eq!(s.cap(), 16);
        for _ in 0..8 {
            s.choose(0, Micros(1));
        }
        assert_eq!(s.cap(), 4);
    }
}
