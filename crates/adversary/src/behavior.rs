//! The interposition point: a [`Behavior`] sits between a protocol node and
//! the network, rewriting what the node sends and receives.

use clanbft_simnet::protocol::Message;
use clanbft_types::{Micros, PartyId};

/// A Byzantine behaviour script.
///
/// The wrapped node runs the *honest* protocol unchanged; the behaviour
/// decides what the rest of the tribe actually observes. `outbound` is
/// called once per queued `(to, msg)` pair and emits zero or more
/// replacement sends; `inbound` filters deliveries before the node sees
/// them (returning `None` drops the message — e.g. refusing to serve
/// pulls). Both receive the simulated clock so scripts can be time-gated.
pub trait Behavior<M: Message>: Send {
    /// Filters/transforms a message arriving at the wrapped node.
    fn inbound(&mut self, from: PartyId, msg: M, now: Micros) -> Option<M> {
        let _ = (from, now);
        Some(msg)
    }

    /// Rewrites one outbound send into zero or more actual sends.
    ///
    /// The default forwards faithfully; overrides call `emit` for every
    /// message that should reach the wire.
    fn outbound(&mut self, to: PartyId, msg: M, now: Micros, emit: &mut dyn FnMut(PartyId, M)) {
        let _ = now;
        emit(to, msg);
    }
}

/// The identity behaviour: forwards everything untouched. Wrapping a node
/// with `Honest` must be observationally identical to not wrapping it.
pub struct Honest;

impl<M: Message> Behavior<M> for Honest {}
