//! Byzantine adversary harness for clanbft.
//!
//! The protocol crates implement *honest* nodes; proving they tolerate the
//! paper's fault model requires running them against genuinely faulty
//! peers. This crate provides the machinery:
//!
//! * [`Behavior`] — an interposition trait between a node and the network:
//!   `outbound` rewrites each queued send into zero or more actual sends,
//!   `inbound` filters deliveries before the node sees them;
//! * [`AdversaryNode`] — wraps any [`Protocol`](clanbft_simnet::protocol::Protocol)
//!   implementation with an optional behaviour. Unwrapped (honest) nodes
//!   delegate directly; wrapped ones run against a scratch context whose
//!   outbox is routed through the behaviour. `Deref`s to the inner node so
//!   metrics code is oblivious;
//! * [`Attack`] — cloneable scripts covering the misbehaviour classes the
//!   hardened honest path must absorb: equivocation, digest mismatch,
//!   selective withholding, replay, signature mutation and double voting.
//!
//! The simulator harness (`clanbft-sim`) wires this up via
//! `TribeSpec::byzantine`, running tribes with up to `f` attackers while
//! asserting agreement, liveness and that the attack left a detection trace
//! (an `Evidence` record or a `rejected.*` counter).

pub mod attacks;
pub mod behavior;
pub mod node;

pub use attacks::{equivocation_twin, Attack};
pub use behavior::{Behavior, Honest};
pub use node::AdversaryNode;

#[cfg(test)]
mod tests {
    use super::*;
    use clanbft_simnet::cost::CostModel;
    use clanbft_simnet::protocol::{Ctx, Message, Protocol};
    use clanbft_types::{Micros, PartyId};

    #[derive(Clone, Debug)]
    struct Num(u64);

    impl Message for Num {
        fn wire_bytes(&self) -> usize {
            8
        }
    }

    /// Echoes every received number back to the sender, +1.
    struct EchoPlusOne;

    impl Protocol<Num> for EchoPlusOne {
        fn on_start(&mut self, ctx: &mut Ctx<Num>) {
            ctx.send(PartyId(1), Num(0));
            ctx.set_timer(Micros(5), 42);
        }

        fn on_message(&mut self, from: PartyId, msg: Num, ctx: &mut Ctx<Num>) {
            ctx.send(from, Num(msg.0 + 1));
        }

        fn on_timer(&mut self, _token: u64, _ctx: &mut Ctx<Num>) {}
    }

    struct DropEven;

    impl Behavior<Num> for DropEven {
        fn inbound(&mut self, _from: PartyId, msg: Num, _now: Micros) -> Option<Num> {
            (msg.0 % 2 == 1).then_some(msg)
        }

        fn outbound(
            &mut self,
            to: PartyId,
            msg: Num,
            _now: Micros,
            emit: &mut dyn FnMut(PartyId, Num),
        ) {
            // Duplicate everything outbound.
            emit(to, msg.clone());
            emit(to, msg);
        }
    }

    #[test]
    fn honest_wrapper_is_transparent() {
        let cost = CostModel::free();
        let mut node = AdversaryNode::honest(EchoPlusOne);
        let mut ctx: Ctx<Num> = Ctx::new(PartyId(0), Micros(0), &cost);
        node.on_start(&mut ctx);
        let out = ctx.take_outbox();
        assert_eq!(out.len(), 1);
        assert_eq!(ctx.take_timers(), vec![(Micros(5), 42)]);
        assert!(!node.is_byzantine());
    }

    #[test]
    fn behavior_intercepts_both_directions() {
        let cost = CostModel::free();
        let mut node = AdversaryNode::byzantine(EchoPlusOne, Box::new(DropEven));
        assert!(node.is_byzantine());
        let mut ctx: Ctx<Num> = Ctx::new(PartyId(0), Micros(0), &cost);
        // Inbound even: dropped, no response.
        node.on_message(PartyId(2), Num(4), &mut ctx);
        assert!(ctx.take_outbox().is_empty());
        // Inbound odd: passes, and the response is duplicated outbound.
        node.on_message(PartyId(2), Num(3), &mut ctx);
        let out = ctx.take_outbox();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].1 .0, 4);
        assert_eq!(out[1].1 .0, 4);
        // Timers pass through interception untouched.
        node.on_start(&mut ctx);
        assert_eq!(ctx.take_timers(), vec![(Micros(5), 42)]);
    }
}
