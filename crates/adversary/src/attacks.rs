//! Scripted attacks over the consensus wire protocol.
//!
//! Each [`Attack`] value instantiates a [`Behavior`] over [`ConsensusMsg`]
//! exercising one distinct misbehaviour class from the paper's fault model:
//!
//! * [`Attack::Equivocate`] — two distinct-but-valid vertex/block pairs per
//!   round, one to each half of the peer set (detected via RBC echo
//!   divergence → `Evidence::EquivocatingSource`);
//! * [`Attack::DigestMismatch`] — the full payload disagrees with the
//!   certified vertex digest (rejected as `rejected.bad_payload`);
//! * [`Attack::Withhold`] — own payloads never reach the listed victims and
//!   their pulls are never served (recovered via pull retry/rotation);
//! * [`Attack::Replay`] — every send is accompanied by a replayed past
//!   signed message (absorbed as `rejected.duplicate`);
//! * [`Attack::MutateSig`] — signature bytes flipped on echoes, votes and
//!   timeouts (rejected as `rejected.bad_sig` when verification is on);
//! * [`Attack::DoubleVote`] — a second leader vote for a conflicting vertex
//!   id each round (detected as `Evidence::DoubleVote`).

use crate::behavior::Behavior;
use clanbft_consensus::{ConsensusMsg, MergedPayload};
use clanbft_crypto::{Digest, Signature};
use clanbft_rbc::{RbcMsg, RbcPacket, TribePayload};
use clanbft_types::{Block, Encode, Micros, PartyId, Round, TxBatch};
use std::collections::HashMap;
use std::sync::Arc;

/// A cloneable attack selector — the unit `TribeSpec.byzantine` is
/// configured with.
#[derive(Clone, Debug)]
pub enum Attack {
    /// Send conflicting vertex/block pairs to disjoint peer halves.
    Equivocate,
    /// Send full payloads whose block contradicts the vertex digest.
    DigestMismatch,
    /// Withhold own payloads from `victims` and never serve their pulls.
    Withhold {
        /// Parties that receive nothing from this node's broadcasts.
        victims: Vec<PartyId>,
    },
    /// Attach a replayed past message to every send.
    Replay,
    /// Flip signature bytes on every signed message.
    MutateSig,
    /// Cast a second, conflicting leader vote each round.
    DoubleVote,
}

impl Attack {
    /// Builds the behaviour implementing this attack.
    pub fn instantiate(&self) -> Box<dyn Behavior<ConsensusMsg>> {
        match self {
            Attack::Equivocate => Box::new(Equivocator::default()),
            Attack::DigestMismatch => Box::new(DigestMismatcher),
            Attack::Withhold { victims } => Box::new(Withholder {
                victims: victims.clone(),
            }),
            Attack::Replay => Box::new(Replayer::default()),
            Attack::MutateSig => Box::new(SigMutator),
            Attack::DoubleVote => Box::new(DoubleVoter),
        }
    }

    /// Short label for logs and test diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            Attack::Equivocate => "equivocate",
            Attack::DigestMismatch => "digest_mismatch",
            Attack::Withhold { .. } => "withhold",
            Attack::Replay => "replay",
            Attack::MutateSig => "mutate_sig",
            Attack::DoubleVote => "double_vote",
        }
    }
}

/// Builds a *valid* twin of `payload` with a different block (and therefore
/// a different vertex id): the equivocation counterpart.
fn twin_of(payload: &MergedPayload) -> MergedPayload {
    let source = payload.vertex.source;
    let round = payload.vertex.round;
    let block = if payload.block.tx_count() > 0 {
        Block::empty(source, round)
    } else {
        // The original is empty; the twin carries one synthetic tx so the
        // digests must differ.
        Block::new(
            source,
            round,
            vec![TxBatch::synthetic(
                source,
                u64::MAX / 2,
                1,
                512,
                Micros::ZERO,
            )],
        )
    };
    let mut vertex = (*payload.vertex).clone();
    vertex.block_digest = block.digest();
    vertex.block_bytes = block.encoded_len() as u64;
    vertex.block_tx_count = block.tx_count();
    MergedPayload::new(vertex, block)
}

/// Sends payload A to even-indexed peers and a twin payload B to odd ones.
#[derive(Default)]
struct Equivocator {
    twins: HashMap<Round, MergedPayload>,
}

impl Behavior<ConsensusMsg> for Equivocator {
    fn outbound(
        &mut self,
        to: PartyId,
        msg: ConsensusMsg,
        _now: Micros,
        emit: &mut dyn FnMut(PartyId, ConsensusMsg),
    ) {
        // Only this node's own broadcasts (Val/ValMeta) are forked; echoes,
        // votes and relays pass through so the node otherwise participates.
        if to.idx() % 2 == 1 {
            if let ConsensusMsg::Rbc(pkt) = &msg {
                match &pkt.msg {
                    RbcMsg::Val(p) => {
                        let twin = self
                            .twins
                            .entry(pkt.round)
                            .or_insert_with(|| twin_of(p))
                            .clone();
                        emit(
                            to,
                            ConsensusMsg::Rbc(RbcPacket {
                                source: pkt.source,
                                round: pkt.round,
                                msg: RbcMsg::Val(twin),
                            }),
                        );
                        return;
                    }
                    RbcMsg::ValMeta(_) => {
                        // The twin's meta must exist even when the honest
                        // copy only left as a meta view; synthesise from the
                        // full payload if we saw it, else pass through.
                        if let Some(twin) = self.twins.get(&pkt.round) {
                            emit(
                                to,
                                ConsensusMsg::Rbc(RbcPacket {
                                    source: pkt.source,
                                    round: pkt.round,
                                    msg: RbcMsg::ValMeta(twin.meta()),
                                }),
                            );
                            return;
                        }
                    }
                    _ => {}
                }
            }
        }
        emit(to, msg);
    }
}

/// Ships full payloads whose block contradicts the vertex's declared block
/// digest — receivers must reject them via `TribePayload::validate`.
struct DigestMismatcher;

impl DigestMismatcher {
    fn forge(payload: &MergedPayload) -> MergedPayload {
        let source = payload.vertex.source;
        let round = payload.vertex.round;
        // Keep the vertex (so the certified digest is unchanged) but swap in
        // a block it does not bind; built by struct literal on purpose —
        // `MergedPayload::new` would assert the binding we are violating.
        let wrong = if payload.block.tx_count() > 0 {
            Block::empty(source, round)
        } else {
            Block::new(
                source,
                round,
                vec![TxBatch::synthetic(source, 1, 1, 512, Micros::ZERO)],
            )
        };
        MergedPayload {
            vertex: Arc::clone(&payload.vertex),
            block: Arc::new(wrong),
        }
    }
}

impl Behavior<ConsensusMsg> for DigestMismatcher {
    fn outbound(
        &mut self,
        to: PartyId,
        msg: ConsensusMsg,
        _now: Micros,
        emit: &mut dyn FnMut(PartyId, ConsensusMsg),
    ) {
        if let ConsensusMsg::Rbc(pkt) = &msg {
            let forged = match &pkt.msg {
                RbcMsg::Val(p) => Some(RbcMsg::Val(Self::forge(p))),
                RbcMsg::PullResp(p) => Some(RbcMsg::PullResp(Self::forge(p))),
                _ => None,
            };
            if let Some(forged) = forged {
                emit(
                    to,
                    ConsensusMsg::Rbc(RbcPacket {
                        source: pkt.source,
                        round: pkt.round,
                        msg: forged,
                    }),
                );
                return;
            }
        }
        emit(to, msg);
    }
}

/// Starves `victims`: they get neither this node's broadcasts nor any pull
/// service, forcing them through the retry/rotation path.
struct Withholder {
    victims: Vec<PartyId>,
}

impl Behavior<ConsensusMsg> for Withholder {
    fn inbound(&mut self, from: PartyId, msg: ConsensusMsg, _now: Micros) -> Option<ConsensusMsg> {
        // Ignore every pull request — from anyone — so a victim rotating to
        // this node gets silence, not service.
        if let ConsensusMsg::Rbc(pkt) = &msg {
            if matches!(pkt.msg, RbcMsg::Pull { .. } | RbcMsg::PullMeta { .. }) {
                let _ = from;
                return None;
            }
        }
        Some(msg)
    }

    fn outbound(
        &mut self,
        to: PartyId,
        msg: ConsensusMsg,
        _now: Micros,
        emit: &mut dyn FnMut(PartyId, ConsensusMsg),
    ) {
        if self.victims.contains(&to) {
            if let ConsensusMsg::Rbc(pkt) = &msg {
                if matches!(
                    pkt.msg,
                    RbcMsg::Val(_) | RbcMsg::ValMeta(_) | RbcMsg::PullResp(_) | RbcMsg::MetaResp(_)
                ) {
                    return;
                }
            }
        }
        emit(to, msg);
    }
}

/// How many past messages the replayer cycles through.
const REPLAY_WINDOW: usize = 8;

/// Duplicates traffic: every send is accompanied by a replayed message from
/// a sliding window of recent past sends.
#[derive(Default)]
struct Replayer {
    window: Vec<ConsensusMsg>,
    cursor: usize,
}

impl Behavior<ConsensusMsg> for Replayer {
    fn outbound(
        &mut self,
        to: PartyId,
        msg: ConsensusMsg,
        _now: Micros,
        emit: &mut dyn FnMut(PartyId, ConsensusMsg),
    ) {
        emit(to, msg.clone());
        if !self.window.is_empty() {
            let replay = self.window[self.cursor % self.window.len()].clone();
            self.cursor = self.cursor.wrapping_add(1);
            emit(to, replay);
        }
        if self.window.len() < REPLAY_WINDOW {
            self.window.push(msg);
        } else {
            let slot = self.cursor % REPLAY_WINDOW;
            self.window[slot] = msg;
        }
    }
}

fn flip(sig: &Signature) -> Signature {
    let mut bytes = sig.0;
    bytes[0] ^= 0xff;
    Signature(bytes)
}

/// Corrupts every signature this node emits (echoes, votes, timeouts).
struct SigMutator;

impl Behavior<ConsensusMsg> for SigMutator {
    fn outbound(
        &mut self,
        to: PartyId,
        msg: ConsensusMsg,
        _now: Micros,
        emit: &mut dyn FnMut(PartyId, ConsensusMsg),
    ) {
        let mutated = match msg {
            ConsensusMsg::Rbc(pkt) => {
                let msg = match pkt.msg {
                    RbcMsg::Echo { digest, sig } => RbcMsg::Echo {
                        digest,
                        sig: sig.map(|s| Arc::new(flip(&s))),
                    },
                    other => other,
                };
                ConsensusMsg::Rbc(RbcPacket {
                    source: pkt.source,
                    round: pkt.round,
                    msg,
                })
            }
            ConsensusMsg::Vote {
                round,
                vertex_id,
                sig,
            } => ConsensusMsg::Vote {
                round,
                vertex_id,
                sig: flip(&sig),
            },
            ConsensusMsg::Timeout {
                round,
                timeout_sig,
                no_vote_sig,
            } => ConsensusMsg::Timeout {
                round,
                timeout_sig: flip(&timeout_sig),
                no_vote_sig: flip(&no_vote_sig),
            },
            // State transfer carries no signatures of its own: the requester
            // cross-checks responses against `f+1` peers instead.
            other @ (ConsensusMsg::StateRequest { .. }
            | ConsensusMsg::StateSnapshot { .. }
            | ConsensusMsg::StateChunk { .. }) => other,
        };
        emit(to, mutated);
    }
}

/// Casts a second, conflicting leader vote right after every genuine one.
#[derive(Default)]
struct DoubleVoter;

impl Behavior<ConsensusMsg> for DoubleVoter {
    fn outbound(
        &mut self,
        to: PartyId,
        msg: ConsensusMsg,
        _now: Micros,
        emit: &mut dyn FnMut(PartyId, ConsensusMsg),
    ) {
        if let ConsensusMsg::Vote {
            round,
            vertex_id,
            sig,
        } = &msg
        {
            let conflicting = Digest::of(vertex_id.as_bytes());
            let second = ConsensusMsg::Vote {
                round: *round,
                vertex_id: conflicting,
                sig: *sig,
            };
            emit(to, msg.clone());
            emit(to, second);
            return;
        }
        emit(to, msg);
    }
}

/// A vertex-shaped helper for engine-level tests: exposes `twin_of` so unit
/// tests can build conflicting-but-valid payload pairs.
pub fn equivocation_twin(payload: &MergedPayload) -> MergedPayload {
    twin_of(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clanbft_types::Vertex;

    fn sample(txs: u32) -> MergedPayload {
        let block = if txs > 0 {
            Block::new(
                PartyId(2),
                Round(4),
                vec![TxBatch::synthetic(PartyId(2), 0, txs, 512, Micros(1))],
            )
        } else {
            Block::empty(PartyId(2), Round(4))
        };
        let vertex = Vertex {
            round: Round(4),
            source: PartyId(2),
            block_digest: block.digest(),
            block_bytes: block.encoded_len() as u64,
            block_tx_count: block.tx_count(),
            strong_edges: vec![],
            weak_edges: vec![],
            nvc: None,
            tc: None,
        };
        MergedPayload::new(vertex, block)
    }

    #[test]
    fn twin_is_valid_but_distinct() {
        for txs in [0u32, 50] {
            let p = sample(txs);
            let t = twin_of(&p);
            assert!(t.validate(), "twin must pass honest validation");
            assert_ne!(p.rbc_digest(), t.rbc_digest(), "twin must conflict");
            assert_eq!(t.vertex.round, p.vertex.round);
            assert_eq!(t.vertex.source, p.vertex.source);
        }
    }

    #[test]
    fn forged_payload_fails_validation() {
        for txs in [0u32, 50] {
            let p = sample(txs);
            let f = DigestMismatcher::forge(&p);
            assert!(!f.validate(), "forgery must be detectable");
            assert_eq!(
                f.rbc_digest(),
                p.rbc_digest(),
                "forgery keeps the certified digest"
            );
        }
    }

    #[test]
    fn sig_flip_changes_bytes() {
        let s = Signature([7u8; 64]);
        assert_ne!(flip(&s).0, s.0);
        assert_eq!(flip(&flip(&s)).0, s.0);
    }

    #[test]
    fn replayer_duplicates_past_traffic() {
        let mut r = Replayer::default();
        let vote = |n: u64| ConsensusMsg::Vote {
            round: Round(n),
            vertex_id: Digest::of(&n.to_le_bytes()),
            sig: Signature([0u8; 64]),
        };
        let mut sent = Vec::new();
        r.outbound(PartyId(1), vote(1), Micros::ZERO, &mut |t, m| {
            sent.push((t, m))
        });
        assert_eq!(sent.len(), 1, "nothing to replay yet");
        r.outbound(PartyId(2), vote(2), Micros::ZERO, &mut |t, m| {
            sent.push((t, m))
        });
        assert_eq!(sent.len(), 3, "second send carries a replay");
    }
}
