//! [`AdversaryNode`]: wraps any [`Protocol`] node so a [`Behavior`] can
//! intercept its traffic while the inner state machine stays byte-for-byte
//! the honest implementation.

use crate::behavior::Behavior;
use clanbft_simnet::protocol::{Ctx, Message, Protocol};
use clanbft_types::PartyId;
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};

/// A protocol node with an optional Byzantine behaviour bolted between it
/// and the network.
///
/// With no behaviour attached the wrapper delegates directly — zero
/// overhead, identical traffic. With one attached, each handler invocation
/// runs the inner node against a scratch [`Ctx`], then routes the queued
/// sends through [`Behavior::outbound`] (timers and CPU charges pass
/// through unchanged — an attacker cannot cheat the cost model).
///
/// `Deref`s to the inner node so metrics code reads `committed_log` etc.
/// without caring whether a node was wrapped.
pub struct AdversaryNode<M: Message, P: Protocol<M>> {
    inner: P,
    behavior: Option<Box<dyn Behavior<M>>>,
    _msg: PhantomData<fn(M)>,
}

impl<M: Message, P: Protocol<M>> AdversaryNode<M, P> {
    /// Wraps `inner` with no interference.
    pub fn honest(inner: P) -> AdversaryNode<M, P> {
        AdversaryNode {
            inner,
            behavior: None,
            _msg: PhantomData,
        }
    }

    /// Wraps `inner` with `behavior` interposed on all traffic.
    pub fn byzantine(inner: P, behavior: Box<dyn Behavior<M>>) -> AdversaryNode<M, P> {
        AdversaryNode {
            inner,
            behavior: Some(behavior),
            _msg: PhantomData,
        }
    }

    /// Whether a behaviour is attached.
    pub fn is_byzantine(&self) -> bool {
        self.behavior.is_some()
    }

    /// The wrapped node.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Runs `f` on the inner node against a scratch context, then forwards
    /// charges and timers verbatim and sends through the behaviour.
    fn intercepted(&mut self, ctx: &mut Ctx<M>, f: impl FnOnce(&mut P, &mut Ctx<M>)) {
        let cost = *ctx.cost();
        let mut scratch: Ctx<M> = Ctx::new(ctx.party(), ctx.now(), &cost);
        f(&mut self.inner, &mut scratch);
        ctx.charge(scratch.charged());
        for (delay, token) in scratch.take_timers() {
            ctx.set_timer(delay, token);
        }
        let behavior = self
            .behavior
            .as_mut()
            .expect("intercepted without behavior");
        let now = ctx.now();
        let mut rewritten: Vec<(PartyId, M)> = Vec::new();
        for (to, msg) in scratch.take_outbox() {
            behavior.outbound(to, msg, now, &mut |t, m| rewritten.push((t, m)));
        }
        for (to, msg) in rewritten {
            ctx.send(to, msg);
        }
    }
}

impl<M: Message, P: Protocol<M>> Deref for AdversaryNode<M, P> {
    type Target = P;

    fn deref(&self) -> &P {
        &self.inner
    }
}

impl<M: Message, P: Protocol<M>> DerefMut for AdversaryNode<M, P> {
    fn deref_mut(&mut self) -> &mut P {
        &mut self.inner
    }
}

impl<M: Message, P: Protocol<M>> Protocol<M> for AdversaryNode<M, P> {
    fn on_start(&mut self, ctx: &mut Ctx<M>) {
        if self.behavior.is_none() {
            self.inner.on_start(ctx);
        } else {
            self.intercepted(ctx, |inner, scratch| inner.on_start(scratch));
        }
    }

    fn on_message(&mut self, from: PartyId, msg: M, ctx: &mut Ctx<M>) {
        match self.behavior.as_mut() {
            None => self.inner.on_message(from, msg, ctx),
            Some(b) => {
                let Some(msg) = b.inbound(from, msg, ctx.now()) else {
                    return;
                };
                self.intercepted(ctx, |inner, scratch| inner.on_message(from, msg, scratch));
            }
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<M>) {
        if self.behavior.is_none() {
            self.inner.on_timer(token, ctx);
        } else {
            self.intercepted(ctx, |inner, scratch| inner.on_timer(token, scratch));
        }
    }

    // The trait default is a no-op; an explicit forward is required or a
    // wrapped node would never see its restart.
    fn on_restart(&mut self, ctx: &mut Ctx<M>) {
        if self.behavior.is_none() {
            self.inner.on_restart(ctx);
        } else {
            self.intercepted(ctx, |inner, scratch| inner.on_restart(scratch));
        }
    }
}
