//! Periodic DAG / commit-frontier checkpoints.
//!
//! A checkpoint is a single atomically-installed snapshot of everything the
//! WAL has proven so far: the commit frontier (so sequence numbers continue
//! gap-free), the signing ledger (voted / no-voted rounds), the live DAG
//! window, the node's own last proposal (equivocation guard), and the
//! epoch-rotation decisions. Once a checkpoint is durable the WAL is
//! rotated (truncated to empty) — log growth is bounded by the checkpoint
//! cadence, not the run length.
//!
//! Installation is crash-atomic: the snapshot is written to a temporary
//! file, fsync'd, then `rename(2)`d over the live name. A crash at any
//! point leaves either the old or the new checkpoint fully intact, and the
//! snapshot's CRC frame rejects a torn rename target on the next open.

use clanbft_types::codec::{Decode, DecodeError, Encode, Reader, Writer};
use clanbft_types::{Block, Round, Vertex, VertexRef};

/// Version tag; bumped if the snapshot layout ever changes.
const CHECKPOINT_VERSION: u32 = 1;

/// The node's own last proposal, preserved verbatim so a recovered node
/// re-broadcasts the identical vertex instead of equivocating.
#[derive(Clone, Debug)]
pub struct ProposalEntry {
    /// The proposed vertex.
    pub vertex: Vertex,
    /// Its block.
    pub block: Block,
}

impl Encode for ProposalEntry {
    fn encode(&self, w: &mut Writer) {
        self.vertex.encode(w);
        self.block.encode(w);
    }
}

impl Decode for ProposalEntry {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(ProposalEntry {
            vertex: Vertex::decode(r)?,
            block: Block::decode(r)?,
        })
    }
}

/// One decided epoch rotation (see `WalRecord::EpochDecided`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EpochEntry {
    /// The epoch number.
    pub epoch: u64,
    /// First round governed by this layout.
    pub from_round: Round,
    /// Clan member lists.
    pub clans: Vec<Vec<u32>>,
}

impl Encode for EpochEntry {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.epoch);
        self.from_round.encode(w);
        self.clans.encode(w);
    }
}

impl Decode for EpochEntry {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(EpochEntry {
            epoch: r.get_u64()?,
            from_round: Round::decode(r)?,
            clans: Vec::<Vec<u32>>::decode(r)?,
        })
    }
}

/// A full durable snapshot of one node's recovery-relevant state.
#[derive(Clone, Debug, Default)]
pub struct Checkpoint {
    /// The round the node was operating in.
    pub current_round: Round,
    /// Highest committed leader round.
    pub last_committed: Option<Round>,
    /// Next commit sequence number to assign.
    pub commit_seq: u64,
    /// Next client-tx sequence cursor (exactly-once batch numbering).
    pub next_tx_seq: u64,
    /// True iff the node had stopped proposing (`max_round` reached).
    pub stopped_proposing: bool,
    /// Rounds with a signed leader vote.
    pub voted: Vec<Round>,
    /// Rounds with a signed timeout/no-vote.
    pub no_voted: Vec<Round>,
    /// The node's own last proposal.
    pub last_proposal: Option<ProposalEntry>,
    /// Live DAG vertices inside the GC window, parents before children.
    pub vertices: Vec<Vertex>,
    /// Vertices already swept into the total order (never re-emitted).
    pub ordered: Vec<VertexRef>,
    /// Per party: `round.0 + 1` of its newest committed vertex (0 = none);
    /// the liveness table the epoch-rotation rule reads.
    pub committed_round_by: Vec<u64>,
    /// Every epoch-rotation decision taken so far, ascending.
    pub epochs: Vec<EpochEntry>,
}

impl Encode for Checkpoint {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(CHECKPOINT_VERSION);
        self.current_round.encode(w);
        self.last_committed.encode(w);
        w.put_u64(self.commit_seq);
        w.put_u64(self.next_tx_seq);
        w.put_u8(self.stopped_proposing as u8);
        self.voted.encode(w);
        self.no_voted.encode(w);
        self.last_proposal.encode(w);
        self.vertices.encode(w);
        self.ordered.encode(w);
        self.committed_round_by.encode(w);
        self.epochs.encode(w);
    }
}

impl Decode for Checkpoint {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let version = r.get_u32()?;
        if version != CHECKPOINT_VERSION {
            return Err(DecodeError::Invalid("unknown checkpoint version"));
        }
        Ok(Checkpoint {
            current_round: Round::decode(r)?,
            last_committed: Option::<Round>::decode(r)?,
            commit_seq: r.get_u64()?,
            next_tx_seq: r.get_u64()?,
            stopped_proposing: bool::decode(r)?,
            voted: Vec::<Round>::decode(r)?,
            no_voted: Vec::<Round>::decode(r)?,
            last_proposal: Option::<ProposalEntry>::decode(r)?,
            vertices: Vec::<Vertex>::decode(r)?,
            ordered: Vec::<VertexRef>::decode(r)?,
            committed_round_by: Vec::<u64>::decode(r)?,
            epochs: Vec::<EpochEntry>::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_including_defaults() {
        let cp = Checkpoint {
            current_round: Round(9),
            last_committed: Some(Round(7)),
            commit_seq: 41,
            next_tx_seq: 1200,
            stopped_proposing: false,
            voted: vec![Round(8), Round(9)],
            no_voted: vec![Round(6)],
            last_proposal: None,
            vertices: Vec::new(),
            ordered: vec![VertexRef {
                round: Round(7),
                source: clanbft_types::PartyId(2),
            }],
            committed_round_by: vec![8, 0, 7],
            epochs: vec![EpochEntry {
                epoch: 1,
                from_round: Round(16),
                clans: vec![vec![1, 2, 3]],
            }],
        };
        let back = Checkpoint::from_bytes(&cp.to_bytes()).expect("decode");
        assert_eq!(back.to_bytes(), cp.to_bytes());
        assert_eq!(back.commit_seq, 41);
        assert_eq!(back.epochs, cp.epochs);

        let empty = Checkpoint::default();
        let back = Checkpoint::from_bytes(&empty.to_bytes()).expect("decode");
        assert_eq!(back.to_bytes(), empty.to_bytes());
    }

    #[test]
    fn version_mismatch_rejected() {
        let mut bytes = Checkpoint::default().to_bytes();
        bytes[0] = 99;
        assert!(Checkpoint::from_bytes(&bytes).is_err());
    }
}
