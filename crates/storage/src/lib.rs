//! Durability substrate for clanbft nodes (zero external deps).
//!
//! A crashed party must come back without equivocating, without re-acking
//! committed sequence numbers, and without asking the tribe to replay the
//! whole run. This crate provides the two primitives that make that
//! possible, both hand-rolled per the workspace's zero-dependency policy:
//!
//! * [`wal`] — an fsync'd append-only write-ahead log with length-prefixed,
//!   CRC-framed records ([`records::WalRecord`]) and torn-tail truncation
//!   on replay;
//! * [`checkpoint`] — periodic, atomically-installed DAG/commit-frontier
//!   snapshots ([`checkpoint::Checkpoint`]) that bound WAL growth via log
//!   rotation.
//!
//! [`NodeStorage`] ties them together as one per-party directory:
//!
//! ```text
//! <dir>/checkpoint.bin   the newest durable snapshot (atomic rename)
//! <dir>/wal.log          records appended since that snapshot
//! ```
//!
//! Recovery = decode the checkpoint (if any), then replay the WAL records
//! on top, in order. The consensus layer owns the semantics; this crate
//! owns framing, durability ordering and corruption tolerance.

pub mod checkpoint;
pub mod crc;
pub mod records;
pub mod wal;

pub use checkpoint::{Checkpoint, EpochEntry, ProposalEntry};
pub use records::WalRecord;
pub use wal::{Replay, Wal};

use clanbft_telemetry::{counters, Telemetry};
use clanbft_types::codec::{Decode, Encode};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// File name of the checkpoint snapshot inside a node's storage directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.bin";
/// File name of the write-ahead log inside a node's storage directory.
pub const WAL_FILE: &str = "wal.log";

/// Everything found on disk when a node's storage directory is opened.
pub struct Recovered {
    /// The newest durable snapshot, if one was ever installed.
    pub checkpoint: Option<Checkpoint>,
    /// WAL records appended after that snapshot, in append order.
    pub records: Vec<WalRecord>,
    /// Bytes discarded from the WAL's torn/corrupt tail.
    pub truncated_bytes: u64,
}

impl Recovered {
    /// True iff there is any durable state at all.
    pub fn is_empty(&self) -> bool {
        self.checkpoint.is_none() && self.records.is_empty()
    }
}

/// One party's durable storage: a checkpoint plus the WAL since it.
pub struct NodeStorage {
    dir: PathBuf,
    wal: Wal,
    fsync: bool,
    telemetry: Telemetry,
}

impl NodeStorage {
    /// Opens (creating if needed) the storage directory, reads the
    /// checkpoint, replays the WAL (truncating any torn tail), and returns
    /// the handle plus everything recovered.
    pub fn open(
        dir: &Path,
        fsync: bool,
        telemetry: Telemetry,
    ) -> io::Result<(NodeStorage, Recovered)> {
        fs::create_dir_all(dir)?;
        let checkpoint = read_checkpoint(&dir.join(CHECKPOINT_FILE));
        let (wal, replay) = Wal::open(&dir.join(WAL_FILE), fsync, telemetry.clone())?;
        let mut records = Vec::with_capacity(replay.records.len());
        for payload in &replay.records {
            // A CRC-valid frame that fails typed decoding marks the end of
            // the trustworthy prefix (same contract as a torn tail).
            match WalRecord::from_bytes(payload) {
                Ok(rec) => records.push(rec),
                Err(_) => break,
            }
        }
        Ok((
            NodeStorage {
                dir: dir.to_path_buf(),
                wal,
                fsync,
                telemetry,
            },
            Recovered {
                checkpoint,
                records,
                truncated_bytes: replay.truncated_bytes,
            },
        ))
    }

    /// Appends one record, durable before return (persist-before-send).
    pub fn log(&mut self, rec: &WalRecord) -> io::Result<()> {
        self.wal.append(&rec.to_bytes())
    }

    /// Atomically installs `cp` as the new checkpoint, then rotates the WAL
    /// (everything the log proved is now inside the snapshot).
    pub fn install_checkpoint(&mut self, cp: &Checkpoint) -> io::Result<()> {
        let payload = cp.to_bytes();
        let mut frame = Vec::with_capacity(payload.len() + 8);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc::crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        let tmp = self.dir.join("checkpoint.tmp");
        let live = self.dir.join(CHECKPOINT_FILE);
        {
            let mut f = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp)?;
            f.write_all(&frame)?;
            if self.fsync {
                let start = std::time::Instant::now();
                f.sync_data()?;
                self.telemetry.record(
                    counters::WAL_FSYNC_MICROS,
                    start.elapsed().as_micros() as u64,
                );
            }
        }
        fs::rename(&tmp, &live)?;
        if self.fsync {
            // Make the rename itself durable (directory entry update).
            if let Ok(d) = File::open(&self.dir) {
                let _ = d.sync_all();
            }
            self.telemetry.add(counters::WAL_FSYNCS, 1);
        }
        self.wal.reset()?;
        self.telemetry.add(counters::CHECKPOINT_WRITTEN, 1);
        self.telemetry
            .record(counters::CHECKPOINT_BYTES, frame.len() as u64);
        Ok(())
    }

    /// The directory backing this node's storage.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

/// Reads and validates the checkpoint file; any I/O error, framing damage
/// or decode failure yields `None` (recovery then proceeds WAL-only).
fn read_checkpoint(path: &Path) -> Option<Checkpoint> {
    let mut buf = Vec::new();
    File::open(path).ok()?.read_to_end(&mut buf).ok()?;
    if buf.len() < 8 {
        return None;
    }
    let len = u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes")) as usize;
    let crc = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes"));
    if buf.len() - 8 < len {
        return None;
    }
    let payload = &buf[8..8 + len];
    if crc::crc32(payload) != crc {
        return None;
    }
    Checkpoint::from_bytes(payload).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use clanbft_types::Round;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch_dir(name: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("clanbft-storage-{}-{n}-{name}", std::process::id()))
    }

    #[test]
    fn open_log_reopen_recovers_records() {
        let dir = scratch_dir("log");
        let (mut st, rec) = NodeStorage::open(&dir, true, Telemetry::null()).expect("open");
        assert!(rec.is_empty());
        st.log(&WalRecord::Voted { round: Round(3) }).expect("log");
        st.log(&WalRecord::NoVoted { round: Round(4) })
            .expect("log");
        drop(st);
        let (_, rec) = NodeStorage::open(&dir, true, Telemetry::null()).expect("reopen");
        assert!(rec.checkpoint.is_none());
        assert_eq!(rec.records.len(), 2);
        assert!(matches!(rec.records[0], WalRecord::Voted { round } if round == Round(3)));
        assert!(matches!(rec.records[1], WalRecord::NoVoted { round } if round == Round(4)));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_rotates_wal() {
        let dir = scratch_dir("cp");
        let (mut st, _) = NodeStorage::open(&dir, true, Telemetry::null()).expect("open");
        st.log(&WalRecord::Voted { round: Round(1) }).expect("log");
        let cp = Checkpoint {
            current_round: Round(5),
            commit_seq: 10,
            ..Checkpoint::default()
        };
        st.install_checkpoint(&cp).expect("checkpoint");
        st.log(&WalRecord::Voted { round: Round(6) }).expect("log");
        drop(st);
        let (_, rec) = NodeStorage::open(&dir, true, Telemetry::null()).expect("reopen");
        let got = rec.checkpoint.expect("checkpoint present");
        assert_eq!(got.current_round, Round(5));
        assert_eq!(got.commit_seq, 10);
        // Only the post-rotation record survives in the log.
        assert_eq!(rec.records.len(), 1);
        assert!(matches!(rec.records[0], WalRecord::Voted { round } if round == Round(6)));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_checkpoint_degrades_to_wal_only() {
        let dir = scratch_dir("corrupt");
        let (mut st, _) = NodeStorage::open(&dir, true, Telemetry::null()).expect("open");
        st.install_checkpoint(&Checkpoint::default())
            .expect("checkpoint");
        st.log(&WalRecord::Voted { round: Round(2) }).expect("log");
        drop(st);
        // Flip a payload byte: the CRC must reject the snapshot.
        let path = dir.join(CHECKPOINT_FILE);
        let mut bytes = fs::read(&path).expect("read");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&path, &bytes).expect("write");
        let (_, rec) = NodeStorage::open(&dir, true, Telemetry::null()).expect("reopen");
        assert!(rec.checkpoint.is_none());
        assert_eq!(rec.records.len(), 1);
        fs::remove_dir_all(&dir).ok();
    }
}
