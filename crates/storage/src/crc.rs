//! CRC-32 (IEEE 802.3 polynomial), hand-rolled per the workspace's
//! zero-dependency policy.
//!
//! The WAL does not need cryptographic strength — torn writes and bit rot
//! are accidental, not adversarial (an attacker with write access to the
//! log owns the node anyway) — so a table-driven CRC-32 is the right tool:
//! 4 bytes per frame and ~1 cycle/byte.

/// The reflected IEEE polynomial (same constant as zlib/ethernet).
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, built once at first use.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        t
    })
}

/// CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let t = table();
    let mut c = !0u32;
    for &b in bytes {
        c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for the ASCII digits.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_bit_flips() {
        let base = b"the quick brown fox jumps over the lazy dog".to_vec();
        let reference = crc32(&base);
        for i in 0..base.len() {
            for bit in 0..8 {
                let mut mutated = base.clone();
                mutated[i] ^= 1 << bit;
                assert_ne!(crc32(&mutated), reference, "flip at byte {i} bit {bit}");
            }
        }
    }
}
