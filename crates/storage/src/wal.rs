//! The append-only write-ahead log.
//!
//! Frame format, repeated until end of file:
//!
//! ```text
//! [u32 len (LE)] [u32 crc32(payload) (LE)] [payload; len bytes]
//! ```
//!
//! Replay walks frames from the start and stops at the first frame that is
//! incomplete (torn tail from a crash mid-append) or whose CRC does not
//! match (bit rot, or a torn write *inside* an overwritten sector). The
//! valid prefix is returned and the file is truncated back to it, so a
//! recovered node continues appending from a clean boundary. Replay never
//! panics on arbitrary bytes — the property tests corrupt a valid log at
//! every byte offset to pin that.
//!
//! Durability: every append writes the full frame with a single `write`
//! call and, when fsync is on (the default), follows it with
//! `File::sync_data`. The WAL is truncated to empty by [`Wal::reset`] after
//! a checkpoint lands — that is the log-rotation step bounding growth.

use crate::crc::crc32;
use clanbft_telemetry::{counters, Telemetry};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Bytes of framing overhead per record.
pub const FRAME_HEADER_BYTES: usize = 8;

/// Upper bound on a single record payload; a length prefix beyond this is
/// treated as corruption (prevents a flipped length bit from asking replay
/// to allocate gigabytes).
pub const MAX_RECORD_BYTES: usize = 64 * 1024 * 1024;

/// Result of replaying a log file or byte buffer.
pub struct Replay {
    /// Every record payload in the valid prefix, in append order.
    pub records: Vec<Vec<u8>>,
    /// Bytes discarded past the valid prefix (torn tail / corruption).
    pub truncated_bytes: u64,
}

/// Parses `buf` as a sequence of frames; returns the decoded payloads of
/// the longest valid prefix and that prefix's byte length.
pub fn replay_bytes(buf: &[u8]) -> (Vec<Vec<u8>>, usize) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    loop {
        let rest = &buf[pos..];
        if rest.len() < FRAME_HEADER_BYTES {
            break;
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
        if len > MAX_RECORD_BYTES || rest.len() - FRAME_HEADER_BYTES < len {
            break;
        }
        let payload = &rest[FRAME_HEADER_BYTES..FRAME_HEADER_BYTES + len];
        if crc32(payload) != crc {
            break;
        }
        records.push(payload.to_vec());
        pos += FRAME_HEADER_BYTES + len;
    }
    (records, pos)
}

/// An open write-ahead log file.
pub struct Wal {
    path: PathBuf,
    file: File,
    fsync: bool,
    telemetry: Telemetry,
}

impl Wal {
    /// Opens (creating if absent) the log at `path`, replays it, truncates
    /// any torn tail, and positions the cursor for appending.
    pub fn open(path: &Path, fsync: bool, telemetry: Telemetry) -> io::Result<(Wal, Replay)> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;
        let (records, valid) = replay_bytes(&buf);
        let truncated_bytes = (buf.len() - valid) as u64;
        if truncated_bytes > 0 {
            file.set_len(valid as u64)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(valid as u64))?;
        Ok((
            Wal {
                path: path.to_path_buf(),
                file,
                fsync,
                telemetry,
            },
            Replay {
                records,
                truncated_bytes,
            },
        ))
    }

    /// Appends one record and (if fsync is on) makes it durable before
    /// returning — the caller's persist-before-send contract depends on
    /// this ordering.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        assert!(payload.len() <= MAX_RECORD_BYTES, "oversized WAL record");
        let mut frame = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file.write_all(&frame)?;
        if self.fsync {
            let start = std::time::Instant::now();
            self.file.sync_data()?;
            self.telemetry.add(counters::WAL_FSYNCS, 1);
            self.telemetry.record(
                counters::WAL_FSYNC_MICROS,
                start.elapsed().as_micros() as u64,
            );
        }
        self.telemetry.add(counters::WAL_APPENDS, 1);
        self.telemetry.add(counters::WAL_BYTES, frame.len() as u64);
        Ok(())
    }

    /// Truncates the log to empty (rotation after a checkpoint landed: the
    /// checkpoint now carries everything the log proved).
    pub fn reset(&mut self) -> io::Result<()> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        if self.fsync {
            let start = std::time::Instant::now();
            self.file.sync_data()?;
            self.telemetry.add(counters::WAL_FSYNCS, 1);
            self.telemetry.record(
                counters::WAL_FSYNC_MICROS,
                start.elapsed().as_micros() as u64,
            );
        }
        Ok(())
    }

    /// The file backing this log.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clanbft_telemetry::Telemetry;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch(name: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "clanbft-wal-{}-{}-{n}-{name}",
            std::process::id(),
            // Coarse uniqueness across test binaries sharing a tmpdir.
            std::thread::current().name().unwrap_or("t").len(),
        ))
    }

    #[test]
    fn append_then_replay_roundtrips() {
        let path = scratch("roundtrip");
        let (mut wal, replay) = Wal::open(&path, true, Telemetry::null()).expect("open");
        assert!(replay.records.is_empty());
        let recs: Vec<Vec<u8>> = (0u8..10).map(|i| vec![i; (i as usize) * 7 + 1]).collect();
        for r in &recs {
            wal.append(r).expect("append");
        }
        drop(wal);
        let (_, replay) = Wal::open(&path, true, Telemetry::null()).expect("reopen");
        assert_eq!(replay.records, recs);
        assert_eq!(replay.truncated_bytes, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated() {
        let path = scratch("torn");
        let (mut wal, _) = Wal::open(&path, true, Telemetry::null()).expect("open");
        wal.append(b"first").expect("append");
        wal.append(b"second").expect("append");
        drop(wal);
        // Tear the last frame: drop its final byte.
        let bytes = std::fs::read(&path).expect("read");
        std::fs::write(&path, &bytes[..bytes.len() - 1]).expect("write");
        let (wal, replay) = Wal::open(&path, true, Telemetry::null()).expect("reopen");
        assert_eq!(replay.records, vec![b"first".to_vec()]);
        assert!(replay.truncated_bytes > 0);
        // The file itself was truncated back to the valid prefix.
        let len = std::fs::metadata(wal.path()).expect("meta").len();
        assert_eq!(len as usize, FRAME_HEADER_BYTES + 5);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reset_empties_the_log() {
        let path = scratch("reset");
        let (mut wal, _) = Wal::open(&path, true, Telemetry::null()).expect("open");
        wal.append(b"doomed").expect("append");
        wal.reset().expect("reset");
        wal.append(b"kept").expect("append");
        drop(wal);
        let (_, replay) = Wal::open(&path, true, Telemetry::null()).expect("reopen");
        assert_eq!(replay.records, vec![b"kept".to_vec()]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn hostile_length_prefix_stops_cleanly() {
        let path = scratch("hostile");
        let mut frame = Vec::new();
        frame.extend_from_slice(&u32::MAX.to_le_bytes());
        frame.extend_from_slice(&0u32.to_le_bytes());
        frame.extend_from_slice(&[0u8; 64]);
        std::fs::write(&path, &frame).expect("write");
        let (_, replay) = Wal::open(&path, true, Telemetry::null()).expect("open");
        assert!(replay.records.is_empty());
        assert_eq!(replay.truncated_bytes, frame.len() as u64);
        std::fs::remove_file(&path).ok();
    }
}
