//! Typed WAL records.
//!
//! Each record is one tagged [`Encode`]/[`Decode`] value; the WAL frames it
//! with a length prefix and CRC (see [`crate::wal`]). The record set covers
//! exactly the state a crashed node must not forget:
//!
//! * `Proposed` — the node's own broadcast for a round, with the full block
//!   and the post-proposal client-tx sequence cursor. Written *before* the
//!   first byte of the proposal leaves the node, so a recovered node can
//!   re-broadcast the identical vertex instead of equivocating.
//! * `Voted` / `NoVoted` — the rounds this node signed a leader vote or a
//!   timeout for; recovery suppresses conflicting signatures for those
//!   rounds (vote/no-vote exclusivity survives the crash).
//! * `Accepted` — an RBC-delivered, shape-validated vertex; replay rebuilds
//!   the local DAG from these.
//! * `Committed` — one commit-sequence advance; replay restores the commit
//!   frontier so sequence numbers continue gap-free and nothing is re-acked.
//! * `Evidence` — recorded Byzantine conflicts survive restarts.
//! * `EpochDecided` — a deterministic clan-rotation decision; replay
//!   re-installs the epoch topology without re-running the vote.

use clanbft_crypto::Digest;
use clanbft_types::codec::{Decode, DecodeError, Encode, Reader, Writer};
use clanbft_types::{Block, Evidence, PartyId, Round, Vertex, VertexRef};

/// One durable consensus state transition.
#[derive(Clone, Debug)]
pub enum WalRecord {
    /// Own proposal for `vertex.round` (persist-before-send).
    Proposed {
        /// The proposed vertex.
        vertex: Vertex,
        /// The block the vertex's digest binds.
        block: Block,
        /// Client-tx sequence cursor *after* this proposal's batches.
        next_tx_seq: u64,
    },
    /// A leader vote was signed for `round`.
    Voted {
        /// The voted round.
        round: Round,
    },
    /// A timeout/no-vote was signed for `round`.
    NoVoted {
        /// The timed-out round.
        round: Round,
    },
    /// An RBC-delivered vertex was accepted into the DAG.
    Accepted {
        /// The accepted vertex.
        vertex: Vertex,
    },
    /// One vertex entered the total order.
    Committed {
        /// Its global sequence number.
        sequence: u64,
        /// The committed vertex.
        vertex: VertexRef,
        /// Digest of its block.
        block_digest: Digest,
        /// Transactions in the block.
        block_tx_count: u64,
        /// The leader round whose commit swept this vertex in.
        leader_round: Round,
    },
    /// A Byzantine conflict observation.
    Evidence {
        /// The recorded evidence.
        evidence: Evidence,
    },
    /// A deterministic epoch-rotation decision (new clan layout effective
    /// from `from_round`).
    EpochDecided {
        /// The decided epoch number.
        epoch: u64,
        /// First round governed by the new layout.
        from_round: Round,
        /// Clan member lists of the new layout.
        clans: Vec<Vec<u32>>,
    },
}

const TAG_PROPOSED: u8 = 1;
const TAG_VOTED: u8 = 2;
const TAG_NO_VOTED: u8 = 3;
const TAG_ACCEPTED: u8 = 4;
const TAG_COMMITTED: u8 = 5;
const TAG_EVIDENCE: u8 = 6;
const TAG_EPOCH: u8 = 7;

const EV_EQUIVOCATING: u8 = 1;
const EV_DOUBLE_VOTE: u8 = 2;
const EV_VOTE_TIMEOUT: u8 = 3;

fn encode_evidence(e: &Evidence, w: &mut Writer) {
    match e {
        Evidence::EquivocatingSource {
            round,
            source,
            first,
            second,
        } => {
            w.put_u8(EV_EQUIVOCATING);
            round.encode(w);
            source.encode(w);
            first.encode(w);
            second.encode(w);
        }
        Evidence::DoubleVote {
            round,
            voter,
            first,
            second,
        } => {
            w.put_u8(EV_DOUBLE_VOTE);
            round.encode(w);
            voter.encode(w);
            first.encode(w);
            second.encode(w);
        }
        Evidence::VoteTimeoutConflict { round, party } => {
            w.put_u8(EV_VOTE_TIMEOUT);
            round.encode(w);
            party.encode(w);
        }
    }
}

fn decode_evidence(r: &mut Reader<'_>) -> Result<Evidence, DecodeError> {
    match r.get_u8()? {
        EV_EQUIVOCATING => Ok(Evidence::EquivocatingSource {
            round: Round::decode(r)?,
            source: PartyId::decode(r)?,
            first: Digest::decode(r)?,
            second: Digest::decode(r)?,
        }),
        EV_DOUBLE_VOTE => Ok(Evidence::DoubleVote {
            round: Round::decode(r)?,
            voter: PartyId::decode(r)?,
            first: Digest::decode(r)?,
            second: Digest::decode(r)?,
        }),
        EV_VOTE_TIMEOUT => Ok(Evidence::VoteTimeoutConflict {
            round: Round::decode(r)?,
            party: PartyId::decode(r)?,
        }),
        t => Err(DecodeError::InvalidTag(t)),
    }
}

impl Encode for WalRecord {
    fn encode(&self, w: &mut Writer) {
        match self {
            WalRecord::Proposed {
                vertex,
                block,
                next_tx_seq,
            } => {
                w.put_u8(TAG_PROPOSED);
                vertex.encode(w);
                block.encode(w);
                w.put_u64(*next_tx_seq);
            }
            WalRecord::Voted { round } => {
                w.put_u8(TAG_VOTED);
                round.encode(w);
            }
            WalRecord::NoVoted { round } => {
                w.put_u8(TAG_NO_VOTED);
                round.encode(w);
            }
            WalRecord::Accepted { vertex } => {
                w.put_u8(TAG_ACCEPTED);
                vertex.encode(w);
            }
            WalRecord::Committed {
                sequence,
                vertex,
                block_digest,
                block_tx_count,
                leader_round,
            } => {
                w.put_u8(TAG_COMMITTED);
                w.put_u64(*sequence);
                vertex.encode(w);
                block_digest.encode(w);
                w.put_u64(*block_tx_count);
                leader_round.encode(w);
            }
            WalRecord::Evidence { evidence } => {
                w.put_u8(TAG_EVIDENCE);
                encode_evidence(evidence, w);
            }
            WalRecord::EpochDecided {
                epoch,
                from_round,
                clans,
            } => {
                w.put_u8(TAG_EPOCH);
                w.put_u64(*epoch);
                from_round.encode(w);
                clans.encode(w);
            }
        }
    }
}

impl Decode for WalRecord {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.get_u8()? {
            TAG_PROPOSED => Ok(WalRecord::Proposed {
                vertex: Vertex::decode(r)?,
                block: Block::decode(r)?,
                next_tx_seq: r.get_u64()?,
            }),
            TAG_VOTED => Ok(WalRecord::Voted {
                round: Round::decode(r)?,
            }),
            TAG_NO_VOTED => Ok(WalRecord::NoVoted {
                round: Round::decode(r)?,
            }),
            TAG_ACCEPTED => Ok(WalRecord::Accepted {
                vertex: Vertex::decode(r)?,
            }),
            TAG_COMMITTED => Ok(WalRecord::Committed {
                sequence: r.get_u64()?,
                vertex: VertexRef::decode(r)?,
                block_digest: Digest::decode(r)?,
                block_tx_count: r.get_u64()?,
                leader_round: Round::decode(r)?,
            }),
            TAG_EVIDENCE => Ok(WalRecord::Evidence {
                evidence: decode_evidence(r)?,
            }),
            TAG_EPOCH => Ok(WalRecord::EpochDecided {
                epoch: r.get_u64()?,
                from_round: Round::decode(r)?,
                clans: Vec::<Vec<u32>>::decode(r)?,
            }),
            t => Err(DecodeError::InvalidTag(t)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clanbft_types::Micros;
    use clanbft_types::TxBatch;

    fn sample_vertex() -> Vertex {
        let block = sample_block();
        Vertex {
            round: Round(3),
            source: PartyId(1),
            block_digest: block.digest(),
            block_bytes: block.encoded_len() as u64,
            block_tx_count: block.tx_count(),
            strong_edges: vec![VertexRef {
                round: Round(2),
                source: PartyId(0),
            }],
            weak_edges: Vec::new(),
            nvc: None,
            tc: None,
        }
    }

    fn sample_block() -> Block {
        Block::new(
            PartyId(1),
            Round(3),
            vec![TxBatch::synthetic(PartyId(1), 7, 5, 64, Micros(11))],
        )
    }

    #[test]
    fn all_variants_roundtrip() {
        let records = vec![
            WalRecord::Proposed {
                vertex: sample_vertex(),
                block: sample_block(),
                next_tx_seq: 12,
            },
            WalRecord::Voted { round: Round(4) },
            WalRecord::NoVoted { round: Round(5) },
            WalRecord::Accepted {
                vertex: sample_vertex(),
            },
            WalRecord::Committed {
                sequence: 9,
                vertex: VertexRef {
                    round: Round(3),
                    source: PartyId(1),
                },
                block_digest: Digest([7; 32]),
                block_tx_count: 5,
                leader_round: Round(4),
            },
            WalRecord::Evidence {
                evidence: Evidence::DoubleVote {
                    round: Round(2),
                    voter: PartyId(3),
                    first: Digest([1; 32]),
                    second: Digest([2; 32]),
                },
            },
            WalRecord::EpochDecided {
                epoch: 1,
                from_round: Round(16),
                clans: vec![vec![0, 2, 5]],
            },
        ];
        for rec in records {
            let bytes = rec.to_bytes();
            let back = WalRecord::from_bytes(&bytes).expect("decode");
            // `Vertex` has no `PartialEq`; the deterministic encoding is the
            // equality we actually care about.
            assert_eq!(back.to_bytes(), bytes);
        }
    }

    #[test]
    fn unknown_tag_is_rejected() {
        assert!(matches!(
            WalRecord::from_bytes(&[99]),
            Err(DecodeError::InvalidTag(99))
        ));
    }
}
