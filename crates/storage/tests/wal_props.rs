//! WAL corruption property suite (the PR's torn-write/bit-flip satellite).
//!
//! The contract under test: replaying a damaged log must never panic and
//! must recover exactly the longest valid prefix of records. Truncation is
//! exercised at *every* byte offset of a valid log; bit flips at every byte
//! position. Mirrors the `TxBatch::decode` hardening suite from PR 6.

use clanbft_storage::wal::{replay_bytes, Wal, FRAME_HEADER_BYTES};
use clanbft_storage::WalRecord;
use clanbft_telemetry::Telemetry;
use clanbft_testkit::{check, Gen};
use clanbft_types::{Encode, Round};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn scratch(name: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "clanbft-walprops-{}-{n}-{name}",
        std::process::id()
    ))
}

/// A random record payload mix: raw bytes (framing doesn't care) plus
/// encoded typed records (what production writes).
fn gen_records(g: &mut Gen) -> Vec<Vec<u8>> {
    g.vec(1, 12, |g| {
        if g.bool() {
            g.bytes(0, 40)
        } else {
            let round = Round(g.u64_in(0, 1 << 20));
            let rec = if g.bool() {
                WalRecord::Voted { round }
            } else {
                WalRecord::NoVoted { round }
            };
            rec.to_bytes()
        }
    })
}

/// Frames `records` the same way `Wal::append` does, returning the log
/// bytes and each record's frame boundary (cumulative end offsets).
fn frame(records: &[Vec<u8>]) -> (Vec<u8>, Vec<usize>) {
    let mut log = Vec::new();
    let mut ends = Vec::new();
    for rec in records {
        log.extend_from_slice(&(rec.len() as u32).to_le_bytes());
        log.extend_from_slice(&clanbft_storage::crc::crc32(rec).to_le_bytes());
        log.extend_from_slice(rec);
        ends.push(log.len());
    }
    (log, ends)
}

/// Records wholly contained in the first `len` bytes.
fn intact_prefix(ends: &[usize], len: usize) -> usize {
    ends.iter().take_while(|&&e| e <= len).count()
}

#[test]
fn truncation_at_every_byte_offset_recovers_longest_prefix() {
    check(
        "wal truncation recovers longest valid prefix",
        48,
        gen_records,
        |records| {
            let (log, ends) = frame(records);
            for cut in 0..=log.len() {
                let (got, valid) = replay_bytes(&log[..cut]);
                let want = intact_prefix(&ends, cut);
                if got.len() != want {
                    return Err(format!(
                        "cut at {cut}: recovered {} records, expected {want}",
                        got.len()
                    ));
                }
                if got != records[..want] {
                    return Err(format!("cut at {cut}: recovered records differ"));
                }
                // The valid prefix must end exactly at a frame boundary.
                let boundary = if want == 0 { 0 } else { ends[want - 1] };
                if valid != boundary {
                    return Err(format!(
                        "cut at {cut}: valid prefix {valid} != boundary {boundary}"
                    ));
                }
            }
            Ok(())
        },
    );
}

#[test]
fn bit_flip_at_every_byte_never_panics_and_keeps_a_prefix() {
    check(
        "wal bit flips recover a clean prefix",
        24,
        |g| (gen_records(g), g.u8_in(1, 255)),
        |(records, mask)| {
            let (log, ends) = frame(records);
            for pos in 0..log.len() {
                let mut damaged = log.clone();
                damaged[pos] ^= *mask;
                let (got, valid) = replay_bytes(&damaged);
                // Replay must stop at or before the damaged frame: every
                // record it returns that lies before the flip must match
                // the original, and the valid prefix may never exceed the
                // log (no panic already proven by getting here).
                let undamaged = intact_prefix(&ends, pos);
                if got.len() > records.len() {
                    return Err(format!("flip at {pos}: invented records"));
                }
                for (i, rec) in got.iter().enumerate().take(undamaged) {
                    if rec != &records[i] {
                        return Err(format!("flip at {pos}: record {i} corrupted silently"));
                    }
                }
                if valid > damaged.len() {
                    return Err(format!("flip at {pos}: valid prefix out of range"));
                }
                // A flip inside frame k must kill frame k (CRC) unless it
                // resynthesized a parseable stream; in either case nothing
                // *before* the flip may be lost.
                if got.len() < undamaged {
                    return Err(format!(
                        "flip at {pos}: lost {} intact records before the flip",
                        undamaged - got.len()
                    ));
                }
            }
            Ok(())
        },
    );
}

#[test]
fn file_reopen_after_truncation_matches_in_memory_replay() {
    check(
        "wal file truncation equals in-memory replay",
        16,
        |g| (gen_records(g), g.u64()),
        |(records, salt)| {
            let path = scratch(&format!("reopen-{salt}"));
            {
                let (mut wal, _) =
                    Wal::open(&path, false, Telemetry::null()).map_err(|e| e.to_string())?;
                for rec in records {
                    wal.append(rec).map_err(|e| e.to_string())?;
                }
            }
            let log = std::fs::read(&path).map_err(|e| e.to_string())?;
            let (_, ends) = frame(records);
            // Cut the file at a few interesting offsets: mid-header,
            // mid-payload, exact boundary.
            let cuts: Vec<usize> = ends
                .iter()
                .flat_map(|&e| {
                    [
                        e,
                        e.saturating_sub(1),
                        e.saturating_sub(FRAME_HEADER_BYTES / 2),
                    ]
                })
                .filter(|&c| c <= log.len())
                .collect();
            for cut in cuts {
                std::fs::write(&path, &log[..cut]).map_err(|e| e.to_string())?;
                let (wal, replay) =
                    Wal::open(&path, false, Telemetry::null()).map_err(|e| e.to_string())?;
                let want = intact_prefix(&ends, cut);
                if replay.records.len() != want {
                    return Err(format!(
                        "file cut at {cut}: {} records, expected {want}",
                        replay.records.len()
                    ));
                }
                // The open must have truncated the file back to the valid
                // prefix so the next append starts clean.
                let on_disk = std::fs::metadata(wal.path())
                    .map_err(|e| e.to_string())?
                    .len() as usize;
                let boundary = if want == 0 { 0 } else { ends[want - 1] };
                if on_disk != boundary {
                    return Err(format!(
                        "file cut at {cut}: file is {on_disk} bytes, expected {boundary}"
                    ));
                }
            }
            std::fs::remove_file(&path).ok();
            Ok(())
        },
    );
}
