//! Drained profile data and its export formats.

/// One scope path's accumulated statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScopeStat {
    /// Semicolon-joined path from the root, e.g. `sim.deliver;rbc.handle`.
    pub path: String,
    /// Leaf name (last path segment).
    pub name: String,
    /// Nesting depth (0 = top-level scope).
    pub depth: usize,
    /// Completed entries into this exact path.
    pub calls: u64,
    /// Wall nanoseconds inside this scope, children included.
    pub total_ns: u64,
    /// Wall nanoseconds inside this scope, children excluded.
    pub self_ns: u64,
    /// Allocations performed while this path was innermost-or-above
    /// (children included), counted only when a
    /// [`CountingAlloc`](crate::CountingAlloc) is installed.
    pub alloc_count: u64,
    /// Bytes requested by those allocations.
    pub alloc_bytes: u64,
    /// Peak growth of live bytes above the entry level across all entries.
    pub peak_bytes: u64,
}

/// A drained scope tree in depth-first discovery order.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Per-path statistics; parents precede children.
    pub scopes: Vec<ScopeStat>,
}

impl Report {
    /// Flamegraph collapsed-stack lines: `a;b;c <self_ns>`, one per path
    /// with nonzero self time. Feed straight to `flamegraph.pl` /
    /// `inferno-flamegraph`.
    pub fn to_collapsed(&self) -> String {
        let mut out = String::new();
        for s in &self.scopes {
            if s.self_ns > 0 {
                out.push_str(&s.path);
                out.push(' ');
                out.push_str(&s.self_ns.to_string());
                out.push('\n');
            }
        }
        out
    }

    /// NDJSON export: one `{"prof":"meta",...}` header line, then one
    /// `{"prof":"scope",...}` line per path. `clanbft-inspect profile`
    /// consumes this format.
    pub fn to_ndjson(&self, label: &str) -> String {
        let total_ns: u64 = self.scopes.iter().map(|s| s.self_ns).sum();
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"prof\":\"meta\",\"label\":\"{}\",\"scopes\":{},\"total_self_ns\":{}}}\n",
            escape(label),
            self.scopes.len(),
            total_ns,
        ));
        for s in &self.scopes {
            out.push_str(&format!(
                "{{\"prof\":\"scope\",\"path\":\"{}\",\"name\":\"{}\",\"depth\":{},\"calls\":{},\"total_ns\":{},\"self_ns\":{},\"allocs\":{},\"alloc_bytes\":{},\"peak_bytes\":{}}}\n",
                escape(&s.path),
                escape(&s.name),
                s.depth,
                s.calls,
                s.total_ns,
                s.self_ns,
                s.alloc_count,
                s.alloc_bytes,
                s.peak_bytes,
            ));
        }
        out
    }

    /// `(path, calls)` pairs in report order — the deterministic shape of a
    /// run (times and allocation counts vary; paths and call counts do not
    /// for a fixed seed).
    pub fn counts(&self) -> Vec<(String, u64)> {
        self.scopes
            .iter()
            .map(|s| (s.path.clone(), s.calls))
            .collect()
    }

    /// Human-readable indented tree with per-scope timing and allocation
    /// columns (for examples and quick prints; `clanbft-inspect profile`
    /// has the richer renderer).
    pub fn to_table(&self) -> String {
        let mut out = String::from(
            "scope                                      calls     total_ms      self_ms       allocs    alloc_kb\n",
        );
        for s in &self.scopes {
            let indent = "  ".repeat(s.depth);
            out.push_str(&format!(
                "{:<40} {:>9} {:>12.3} {:>12.3} {:>12} {:>11.1}\n",
                format!("{indent}{}", s.name),
                s.calls,
                s.total_ns as f64 / 1e6,
                s.self_ns as f64 / 1e6,
                s.alloc_count,
                s.alloc_bytes as f64 / 1024.0,
            ));
        }
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars) for
/// the hand-rolled NDJSON writer; scope names are simple identifiers so
/// this is belt-and-braces.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
