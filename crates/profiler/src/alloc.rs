//! Counting global-allocator wrapper.
//!
//! [`CountingAlloc`] forwards every call to [`System`] and, when tracking is
//! on, bumps one thread-local counter block: cumulative allocation count,
//! cumulative allocated bytes, currently-live bytes, and the peak of live
//! bytes within the innermost open scope window. Scope guards snapshot the
//! counters on entry and attribute the deltas on exit, so allocation cost
//! lands on the scope that incurred it.
//!
//! The counters live in a single `const`-initialised struct of `Cell`s: one
//! TLS lookup per allocator call, and no destructor, so the allocator may
//! touch them from any point in a thread's life — including TLS teardown,
//! where `try_with` degrades to "don't count" instead of aborting. Tracking
//! is flipped together with the profiler's enable flag; with tracking off
//! the wrapper costs one relaxed atomic load per call.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};

/// Whether allocator calls are currently being counted. Flipped by
/// `prof::enable` / `prof::disable` alongside the scope flag.
static TRACK: AtomicBool = AtomicBool::new(false);

/// Per-thread allocation counters, packed into one struct so every
/// allocator call and scope snapshot pays a single TLS lookup.
struct Counters {
    /// Cumulative allocations on this thread since tracking started.
    count: Cell<u64>,
    /// Cumulative bytes requested on this thread since tracking started.
    bytes: Cell<u64>,
    /// Bytes currently live (allocated minus freed) on this thread.
    live: Cell<u64>,
    /// Max of `live` since the innermost open scope window began.
    window_peak: Cell<u64>,
}

thread_local! {
    static COUNTERS: Counters = const {
        Counters {
            count: Cell::new(0),
            bytes: Cell::new(0),
            live: Cell::new(0),
            window_peak: Cell::new(0),
        }
    };
}

/// A `#[global_allocator]` wrapper over [`System`] that attributes
/// allocation count, bytes, and peak live bytes to the active profiler
/// scope.
///
/// Install it in *binaries* that want allocation columns in their profiles
/// (benches, examples, integration tests):
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: clanbft_profiler::CountingAlloc = clanbft_profiler::CountingAlloc;
/// ```
///
/// Libraries must never install it — a final binary can have exactly one
/// global allocator. Without it the profiler still times scopes; the
/// allocation columns just stay zero.
pub struct CountingAlloc;

// SAFETY: every method forwards to `System` verbatim; the extra work only
// reads/writes thread-local `Cell`s (no allocation, no panic — `try_with`
// swallows TLS-teardown access).
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() && TRACK.load(Ordering::Relaxed) {
            record(layout.size() as u64);
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() && TRACK.load(Ordering::Relaxed) {
            record(layout.size() as u64);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        if TRACK.load(Ordering::Relaxed) {
            release(layout.size() as u64);
        }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() && TRACK.load(Ordering::Relaxed) {
            // A grow/shrink counts as one fresh allocation of the new size;
            // live bytes swap the old size for the new one.
            release(layout.size() as u64);
            record(new_size as u64);
        }
        p
    }
}

/// Count one allocation of `size` bytes and advance the window peak.
fn record(size: u64) {
    let _ = COUNTERS.try_with(|c| {
        c.count.set(c.count.get() + 1);
        c.bytes.set(c.bytes.get().saturating_add(size));
        let live = c.live.get().saturating_add(size);
        c.live.set(live);
        if live > c.window_peak.get() {
            c.window_peak.set(live);
        }
    });
}

/// Count one free of `size` bytes. Saturating: frees of blocks allocated
/// before tracking started must not underflow the live counter.
fn release(size: u64) {
    let _ = COUNTERS.try_with(|c| c.live.set(c.live.get().saturating_sub(size)));
}

/// Turn counting on or off (process-wide flag; counters are per-thread).
pub(crate) fn set_tracking(on: bool) {
    TRACK.store(on, Ordering::Relaxed);
}

/// Whether allocator calls are currently being counted. Scopes consult this
/// on entry: with tracking off the counters are frozen, so the guard skips
/// the counter snapshot entirely (the timing-only fast path).
pub(crate) fn tracking() -> bool {
    TRACK.load(Ordering::Relaxed)
}

/// Scope entry, one TLS lookup: snapshot `(alloc_count, alloc_bytes,
/// live_bytes)` and open a new peak window at the current live level,
/// returning the outer window's peak last so the matching [`exit_scope`]
/// can restore it. All zeros when no [`CountingAlloc`] is installed.
pub(crate) fn enter_scope() -> (u64, u64, u64, u64) {
    COUNTERS
        .try_with(|c| {
            let live = c.live.get();
            let saved = c.window_peak.get();
            c.window_peak.set(live);
            (c.count.get(), c.bytes.get(), live, saved)
        })
        .unwrap_or((0, 0, 0, 0))
}

/// Scope exit, one TLS lookup: snapshot `(alloc_count, alloc_bytes,
/// window_peak)` and close the peak window — the outer window's peak is
/// the max of what it had seen before (`saved`) and everything the inner
/// window saw.
pub(crate) fn exit_scope(saved: u64) -> (u64, u64, u64) {
    COUNTERS
        .try_with(|c| {
            let peak = c.window_peak.get();
            if saved > peak {
                c.window_peak.set(saved);
            }
            (c.count.get(), c.bytes.get(), peak)
        })
        .unwrap_or((0, 0, 0))
}
