//! Thread-local hierarchical scoped timers.
//!
//! Each thread owns a scope tree rooted at a synthetic node. `scope(name)`
//! descends into (creating if needed) the child of the current node with
//! that name and returns a guard; dropping the guard ascends and adds the
//! elapsed nanoseconds plus the allocation deltas since entry to that node.
//! The same `&'static str` entered from two different parents yields two
//! nodes — paths, not names, identify scopes, exactly like collapsed
//! flamegraph stacks.

use crate::alloc;
use crate::clock;
use crate::report::{Report, ScopeStat};
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};

/// Process-wide switch. Off by default; a disabled `scope()` is one relaxed
/// load and an inert guard.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// One node of a thread's scope tree.
struct Node {
    name: &'static str,
    children: Vec<usize>,
    calls: u64,
    total_ticks: u64,
    alloc_count: u64,
    alloc_bytes: u64,
    peak_bytes: u64,
}

impl Node {
    fn new(name: &'static str) -> Node {
        Node {
            name,
            children: Vec::new(),
            calls: 0,
            total_ticks: 0,
            alloc_count: 0,
            alloc_bytes: 0,
            peak_bytes: 0,
        }
    }
}

/// A thread's scope tree. Node 0 is the synthetic root (never reported).
struct Tree {
    nodes: Vec<Node>,
    current: usize,
}

impl Tree {
    /// The empty tree (`const`-constructible so the thread-local access
    /// path skips lazy initialisation); the synthetic root is pushed on
    /// first use by [`Tree::root`].
    const fn new() -> Tree {
        Tree {
            nodes: Vec::new(),
            current: 0,
        }
    }

    /// Index of the synthetic root, materialising it on first use.
    fn root(&mut self) -> usize {
        if self.nodes.is_empty() {
            self.nodes.push(Node::new(""));
        }
        0
    }

    /// Index of `parent`'s child named `name`, creating it on first entry.
    fn child_of(&mut self, parent: usize, name: &'static str) -> usize {
        // Linear scan: fan-out per node is small (a handful of stages), and
        // `&'static str` lets the pointer-equality fast path skip the string
        // compare for the overwhelmingly common repeat entry.
        for i in 0..self.nodes[parent].children.len() {
            let c = self.nodes[parent].children[i];
            let n = self.nodes[c].name;
            if std::ptr::eq(n.as_ptr(), name.as_ptr()) || n == name {
                return c;
            }
        }
        let idx = self.nodes.len();
        self.nodes.push(Node::new(name));
        self.nodes[parent].children.push(idx);
        idx
    }
}

thread_local! {
    static TREE: RefCell<Tree> = const { RefCell::new(Tree::new()) };
}

/// Turn profiling on for the whole process (scopes record on every thread;
/// allocation tracking starts if a [`crate::CountingAlloc`] is installed).
pub fn enable() {
    clock::mark_origin();
    ENABLED.store(true, Ordering::Relaxed);
    alloc::set_tracking(true);
}

/// Turn profiling on *without* allocation accounting: scopes record calls
/// and wall time, the allocation columns stay zero, and both the allocator
/// wrapper and the scope guards skip the counter bookkeeping. The cheapest
/// enabled mode — use it when only the timing profile matters.
pub fn enable_timing_only() {
    clock::mark_origin();
    ENABLED.store(true, Ordering::Relaxed);
    alloc::set_tracking(false);
}

/// Turn profiling off. Scopes already open keep recording into valid nodes;
/// scopes opened after this are inert.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
    alloc::set_tracking(false);
}

/// Whether profiling is currently on.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Drop this thread's accumulated tree without reporting it.
pub fn reset() {
    TREE.with(|t| *t.borrow_mut() = Tree::new());
}

/// Enter the named scope; the returned guard attributes wall time and
/// allocations to it until dropped.
///
/// Bind the guard — `let _scope = prof::scope("dag.insert");` — a bare
/// `let _ =` drops it immediately and times nothing.
#[must_use = "binding the guard defines the scope's extent; `let _ = ...` drops it immediately"]
pub fn scope(name: &'static str) -> ScopeGuard {
    if !ENABLED.load(Ordering::Relaxed) {
        return ScopeGuard {
            start_ticks: None,
            track: false,
            node: 0,
            prev: 0,
            entry_count: 0,
            entry_bytes: 0,
            entry_live: 0,
            saved_peak: 0,
        };
    }
    // Timing-only mode: the counters are frozen, so skip their snapshot.
    let track = alloc::tracking();
    let (entry_count, entry_bytes, entry_live, saved_peak) = if track {
        alloc::enter_scope()
    } else {
        (0, 0, 0, 0)
    };
    let (node, prev) = TREE.with(|t| {
        let mut t = t.borrow_mut();
        t.root();
        let prev = t.current;
        let node = t.child_of(prev, name);
        t.current = node;
        (node, prev)
    });
    ScopeGuard {
        // Read the clock last so tree bookkeeping lands in the parent's
        // self time, not this scope's.
        start_ticks: Some(clock::now_ticks()),
        track,
        node,
        prev,
        entry_count,
        entry_bytes,
        entry_live,
        saved_peak,
    }
}

/// RAII guard returned by [`scope`]; records on drop.
pub struct ScopeGuard {
    /// `None` = profiler was disabled at entry; drop is a no-op.
    start_ticks: Option<u64>,
    /// Whether allocation tracking was on at entry (skip counters if not).
    track: bool,
    node: usize,
    prev: usize,
    entry_count: u64,
    entry_bytes: u64,
    entry_live: u64,
    saved_peak: u64,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        let Some(start) = self.start_ticks else {
            return;
        };
        let elapsed_ticks = clock::now_ticks().wrapping_sub(start);
        let (count, bytes, window_peak) = if self.track {
            alloc::exit_scope(self.saved_peak)
        } else {
            (0, 0, 0)
        };
        TREE.with(|t| {
            let mut t = t.borrow_mut();
            // If `take_report`/`reset` fired while this scope was open the
            // index is stale (fresh tree, current == root): skip recording
            // rather than corrupt an unrelated node.
            if t.current != self.node || self.node >= t.nodes.len() {
                return;
            }
            let node = &mut t.nodes[self.node];
            node.calls += 1;
            node.total_ticks = node.total_ticks.saturating_add(elapsed_ticks);
            node.alloc_count += count.saturating_sub(self.entry_count);
            node.alloc_bytes += bytes.saturating_sub(self.entry_bytes);
            // Peak attributable to this scope: how far live bytes climbed
            // above the entry level while the window was open.
            let climb = window_peak.saturating_sub(self.entry_live);
            if climb > node.peak_bytes {
                node.peak_bytes = climb;
            }
            t.current = self.prev;
        });
    }
}

/// Drain this thread's scope tree into a [`Report`] and start fresh.
///
/// Call it with no scopes open (e.g. after a run completes); a guard still
/// open across the drain detects the swap and discards its own sample.
pub fn take_report() -> Report {
    let tree = TREE.with(|t| std::mem::replace(&mut *t.borrow_mut(), Tree::new()));
    // One wall-clock calibration per report converts the accumulated raw
    // ticks to nanoseconds (see `clock`).
    let ratio = clock::calibrate();
    let mut scopes = Vec::new();
    if !tree.nodes.is_empty() {
        flatten(&tree, 0, "", 0, ratio, &mut scopes);
    }
    Report { scopes }
}

/// Depth-first walk emitting one [`ScopeStat`] per node in discovery order
/// (deterministic for deterministic runs — the basis of the scope-count
/// pins in `tests/determinism.rs`).
fn flatten(
    tree: &Tree,
    idx: usize,
    prefix: &str,
    depth: usize,
    ratio: f64,
    out: &mut Vec<ScopeStat>,
) {
    let node = &tree.nodes[idx];
    let path = if idx == 0 {
        String::new()
    } else if prefix.is_empty() {
        node.name.to_string()
    } else {
        format!("{prefix};{}", node.name)
    };
    if idx != 0 {
        // Sum the children's *converted* totals so the reported numbers are
        // exactly additive (self = total − Σ child totals as printed),
        // immune to per-node tick→ns rounding.
        let child_ns: u64 = node
            .children
            .iter()
            .map(|&c| clock::ticks_to_ns(tree.nodes[c].total_ticks, ratio))
            .sum();
        let total_ns = clock::ticks_to_ns(node.total_ticks, ratio);
        out.push(ScopeStat {
            path: path.clone(),
            name: node.name.to_string(),
            depth,
            calls: node.calls,
            total_ns,
            self_ns: total_ns.saturating_sub(child_ns),
            alloc_count: node.alloc_count,
            alloc_bytes: node.alloc_bytes,
            peak_bytes: node.peak_bytes,
        });
    }
    let next_depth = if idx == 0 { 0 } else { depth + 1 };
    for &c in &node.children {
        flatten(tree, c, &path, next_depth, ratio, out);
    }
}
