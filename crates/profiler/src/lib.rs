//! Performance observability substrate for the clanbft workspace (zero
//! external deps).
//!
//! The telemetry layer records *protocol* events (what the nodes did); this
//! crate records *performance* facts (where the wall clock and the heap
//! went). It is the measuring stick for ROADMAP item 2 — making the
//! single-threaded event loop fast enough for n = 500–1000 runs — because a
//! speedup that is not attributed to a pipeline stage cannot be
//! regression-pinned.
//!
//! * [`scope`] — thread-local hierarchical scoped timers. Each
//!   `prof::scope("rbc.handle")` guard attributes the enclosed wall time
//!   (and, when the [`CountingAlloc`] wrapper is installed, allocation
//!   count / bytes / peak) to one node of a per-thread scope tree. Nesting
//!   builds paths (`sim.deliver;rbc.handle;dag.insert`) exactly like
//!   collapsed flamegraph stacks.
//! * [`CountingAlloc`] — a `#[global_allocator]` wrapper over
//!   [`std::alloc::System`] that counts allocations into thread-local
//!   cells the scope guards snapshot. Binaries opt in; libraries never
//!   install it.
//! * [`Report`] — the drained tree: per-path calls, total/self
//!   nanoseconds, allocation counters; exported as an aligned table, as
//!   flamegraph collapsed-stack lines (`a;b;c 1234`), or as NDJSON for
//!   `clanbft-inspect profile`.
//!
//! Cost discipline: a scope on a *disabled* profiler is one relaxed atomic
//! load and a `None` guard — no clock read, no thread-local access — so the
//! instrumentation can stay in the hot path permanently (same contract as
//! `Telemetry::null()`). Enabled scopes record raw TSC ticks (two `rdtsc`
//! reads, calibrated to nanoseconds once per report — see the internal
//! `clock` module) plus a thread-local tree touch: tens of nanoseconds per
//! scope, not hundreds. Call sites are placed at per-message/per-proposal
//! granularity, never per-byte, to keep the measured overhead under 5 % of
//! an instrumented run.
//!
//! Caveats (see DESIGN.md "Performance observability"):
//! * Scope trees are strictly per-thread; the report describes the thread
//!   that calls [`take_report`]. The simulator is single-threaded, so one
//!   report covers a whole run.
//! * Allocation numbers are zero unless the binary installs
//!   [`CountingAlloc`]; they then cover exactly the reporting thread's
//!   allocations (other threads count into their own cells).
//! * Recursive scopes accumulate into a chain of tree nodes
//!   (`a;a;a`), and a recursive node's `total_ns` double-counts nested
//!   activations, as in any tree profiler; `self_ns` stays additive.

#![warn(missing_docs)]

mod alloc;
mod clock;
mod report;
mod scope;

pub use alloc::CountingAlloc;
pub use report::{Report, ScopeStat};
pub use scope::{
    disable, enable, enable_timing_only, enabled, reset, scope, take_report, ScopeGuard,
};
