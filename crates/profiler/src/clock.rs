//! The profiler's time source: raw TSC ticks, calibrated to nanoseconds
//! once per report.
//!
//! `Instant::now` costs two-digit nanoseconds per read even via the vDSO
//! (and ~100 ns when the host makes it a real syscall) — too much for a
//! scope that may enclose only a few hundred nanoseconds of work. On
//! x86_64 the invariant TSC is monotonic, constant-rate, and readable in a
//! handful of cycles, so scopes record *ticks* and the conversion to
//! nanoseconds happens once, at [`take_report`](crate::take_report) time:
//!
//! * [`enable`](crate::enable) stamps a `(Instant, ticks)` calibration
//!   origin.
//! * [`calibrate`] re-stamps both clocks and derives ns-per-tick from the
//!   shared wall interval — the longer the run, the tighter the ratio.
//!
//! Non-x86_64 targets fall back to `Instant`-derived nanoseconds (ratio
//! ~1.0); everything downstream is agnostic to which source produced the
//! ticks.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Calibration origin: wall clock and tick counter sampled together at
/// [`mark_origin`] (i.e. at `enable()`).
static ORIGIN: Mutex<Option<(Instant, u64)>> = Mutex::new(None);

/// Nanoseconds per tick as `f64` bits; `0` means "not yet calibrated",
/// read as 1.0.
static NS_PER_TICK: AtomicU64 = AtomicU64::new(0);

/// Current tick count. x86_64: raw `rdtsc` (~5–10 ns). The invariant TSC
/// (every x86_64 CPU this crate will meet) is constant-rate and synchronized
/// across cores, so cross-core scheduling does not reorder it.
#[cfg(target_arch = "x86_64")]
#[inline(always)]
pub(crate) fn now_ticks() -> u64 {
    // SAFETY: `rdtsc` is unprivileged, has no memory effects, and exists on
    // every x86_64 CPU.
    unsafe { core::arch::x86_64::_rdtsc() }
}

/// Current tick count, fallback: monotonic nanoseconds since first use
/// (ns-per-tick calibrates to ~1.0).
#[cfg(not(target_arch = "x86_64"))]
pub(crate) fn now_ticks() -> u64 {
    use std::sync::OnceLock;
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Stamp the calibration origin (called by `enable()`).
pub(crate) fn mark_origin() {
    *ORIGIN.lock().expect("clock origin lock") = Some((Instant::now(), now_ticks()));
}

/// Refresh the ns-per-tick ratio from the span since [`mark_origin`] and
/// return it. Falls back to the previous ratio (or 1.0) when the span is
/// too short to divide meaningfully.
pub(crate) fn calibrate() -> f64 {
    let origin = *ORIGIN.lock().expect("clock origin lock");
    if let Some((t0, k0)) = origin {
        let ns = t0.elapsed().as_nanos() as f64;
        let ticks = now_ticks().wrapping_sub(k0) as f64;
        if ticks >= 1.0 && ns > 0.0 {
            let ratio = ns / ticks;
            NS_PER_TICK.store(ratio.to_bits(), Ordering::Relaxed);
            return ratio;
        }
    }
    ns_per_tick()
}

/// The last calibrated ratio (1.0 before any calibration).
pub(crate) fn ns_per_tick() -> f64 {
    match NS_PER_TICK.load(Ordering::Relaxed) {
        0 => 1.0,
        bits => f64::from_bits(bits),
    }
}

/// Convert a tick span to nanoseconds with the given ratio.
pub(crate) fn ticks_to_ns(ticks: u64, ratio: f64) -> u64 {
    (ticks as f64 * ratio) as u64
}
