//! Behavioural tests for the profiler: tree shape, attribution, allocator
//! accounting, export formats, and the disabled-cost contract.
//!
//! The enable flag is process-wide while the harness runs tests on parallel
//! threads, so every test that flips it holds `GUARD`. Scope *data* is
//! thread-local, so a concurrent test thread can at worst see the flag on —
//! it cannot corrupt another thread's tree.

use clanbft_profiler as prof;
use std::sync::Mutex;
use std::time::Instant;

#[global_allocator]
static ALLOC: prof::CountingAlloc = prof::CountingAlloc;

static GUARD: Mutex<()> = Mutex::new(());

/// Run `f` with the profiler enabled and a fresh tree; returns its report.
fn profiled(f: impl FnOnce()) -> prof::Report {
    let _g = GUARD.lock().unwrap();
    prof::reset();
    prof::enable();
    f();
    let report = prof::take_report();
    prof::disable();
    report
}

fn stat<'r>(r: &'r prof::Report, path: &str) -> &'r prof::ScopeStat {
    r.scopes
        .iter()
        .find(|s| s.path == path)
        .unwrap_or_else(|| panic!("missing scope {path}"))
}

#[test]
fn nested_scopes_build_paths_and_attribute_time() {
    let report = profiled(|| {
        let _a = prof::scope("outer");
        for _ in 0..3 {
            let _b = prof::scope("inner");
            std::hint::black_box(vec![0u8; 64]);
        }
    });
    let outer = stat(&report, "outer");
    let inner = stat(&report, "outer;inner");
    assert_eq!(outer.calls, 1);
    assert_eq!(inner.calls, 3);
    assert_eq!(inner.depth, 1);
    assert_eq!(inner.name, "inner");
    // Parent's total covers the children; self excludes them.
    assert!(outer.total_ns >= inner.total_ns);
    assert_eq!(outer.self_ns, outer.total_ns - inner.total_ns);
    assert_eq!(inner.self_ns, inner.total_ns);
}

#[test]
fn same_name_under_different_parents_is_two_paths() {
    let report = profiled(|| {
        {
            let _a = prof::scope("a");
            let _s = prof::scope("shared");
        }
        {
            let _b = prof::scope("b");
            let _s = prof::scope("shared");
            let _s2 = prof::scope("deeper");
        }
    });
    assert_eq!(stat(&report, "a;shared").calls, 1);
    assert_eq!(stat(&report, "b;shared").calls, 1);
    assert_eq!(stat(&report, "b;shared;deeper").depth, 2);
    // Parents precede children in report order.
    let order: Vec<&str> = report.scopes.iter().map(|s| s.path.as_str()).collect();
    assert_eq!(order, ["a", "a;shared", "b", "b;shared", "b;shared;deeper"]);
}

#[test]
fn allocations_attribute_to_the_active_scope() {
    let report = profiled(|| {
        let _a = prof::scope("allocating");
        std::hint::black_box(vec![0u8; 4096]);
        {
            let _b = prof::scope("quiet");
            // No allocation here.
            std::hint::black_box(1 + 1);
        }
    });
    let a = stat(&report, "allocating");
    assert!(a.alloc_count >= 1, "alloc_count = {}", a.alloc_count);
    assert!(a.alloc_bytes >= 4096, "alloc_bytes = {}", a.alloc_bytes);
    assert!(a.peak_bytes >= 4096, "peak_bytes = {}", a.peak_bytes);
    // The quiet child may see incidental allocations but not the vec.
    assert!(stat(&report, "allocating;quiet").alloc_bytes < 4096);
}

#[test]
fn peak_tracks_transient_growth_not_cumulative_bytes() {
    let report = profiled(|| {
        let _a = prof::scope("churn");
        // 8 sequential 1 KiB allocations, each freed before the next:
        // cumulative bytes ~8 KiB, but peak growth stays ~1 KiB.
        for _ in 0..8 {
            std::hint::black_box(vec![7u8; 1024]);
        }
    });
    let churn = stat(&report, "churn");
    assert!(churn.alloc_bytes >= 8 * 1024);
    assert!(
        churn.peak_bytes < 4 * 1024,
        "peak {} should be ~one buffer, not the sum",
        churn.peak_bytes
    );
}

#[test]
fn disabled_profiler_records_nothing() {
    let _g = GUARD.lock().unwrap();
    prof::disable();
    prof::reset();
    {
        let _a = prof::scope("ghost");
        let _b = prof::scope("ghost.child");
    }
    let report = prof::take_report();
    assert!(report.scopes.is_empty(), "{:?}", report.scopes);
}

#[test]
fn disabled_scope_is_near_zero_cost() {
    let _g = GUARD.lock().unwrap();
    prof::disable();
    prof::reset();
    // Warm up, then time 100k disabled scope entries. One relaxed load plus
    // guard construction must stay well under 200 ns/call even on a noisy
    // CI box (typical: low single-digit ns).
    for _ in 0..1_000 {
        let _s = prof::scope("warmup");
    }
    let iters = 100_000u32;
    let start = Instant::now();
    for _ in 0..iters {
        let _s = prof::scope("disabled.hot");
        std::hint::black_box(&_s);
    }
    let per_call = start.elapsed().as_nanos() as f64 / f64::from(iters);
    assert!(
        per_call < 200.0,
        "disabled scope costs {per_call:.1} ns/call"
    );
}

#[test]
fn take_report_while_scope_open_discards_the_open_sample_safely() {
    let _g = GUARD.lock().unwrap();
    prof::reset();
    prof::enable();
    let outer = prof::scope("survivor");
    {
        let _inner = prof::scope("closed");
    }
    let report = prof::take_report();
    // The closed child made it in; the still-open scope has no completed
    // call yet.
    assert_eq!(stat(&report, "survivor;closed").calls, 1);
    assert_eq!(stat(&report, "survivor").calls, 0);
    // Dropping the stale guard after the drain must not panic or pollute
    // the fresh tree.
    drop(outer);
    let after = prof::take_report();
    prof::disable();
    assert!(after.scopes.is_empty(), "{:?}", after.scopes);
}

#[test]
fn collapsed_export_is_flamegraph_shaped() {
    let report = profiled(|| {
        let _a = prof::scope("stage_a");
        let _b = prof::scope("stage_b");
        std::hint::black_box(vec![0u8; 32]);
    });
    let collapsed = report.to_collapsed();
    for line in collapsed.lines() {
        let (stack, count) = line.rsplit_once(' ').expect("`stack N` shape");
        assert!(!stack.is_empty());
        count.parse::<u64>().expect("trailing sample count");
    }
    assert!(collapsed.contains("stage_a;stage_b "), "{collapsed}");
}

#[test]
fn ndjson_export_has_meta_then_scopes() {
    let report = profiled(|| {
        let _a = prof::scope("ndjson.check");
    });
    let ndjson = report.to_ndjson("unit \"quoted\" label");
    let lines: Vec<&str> = ndjson.lines().collect();
    assert_eq!(lines.len(), 1 + report.scopes.len());
    assert!(lines[0].starts_with("{\"prof\":\"meta\""));
    assert!(lines[0].contains("\\\"quoted\\\""), "label must be escaped");
    assert!(lines[1].starts_with("{\"prof\":\"scope\""));
    assert!(lines[1].contains("\"path\":\"ndjson.check\""));
    for key in [
        "\"calls\":",
        "\"total_ns\":",
        "\"self_ns\":",
        "\"allocs\":",
        "\"alloc_bytes\":",
        "\"peak_bytes\":",
        "\"depth\":",
    ] {
        assert!(lines[1].contains(key), "missing {key} in {}", lines[1]);
    }
}

#[test]
fn counts_expose_paths_and_calls_in_report_order() {
    let report = profiled(|| {
        for _ in 0..5 {
            let _a = prof::scope("tick");
            let _b = prof::scope("tock");
        }
    });
    assert_eq!(
        report.counts(),
        vec![("tick".to_string(), 5), ("tick;tock".to_string(), 5)]
    );
}

#[test]
fn reset_discards_pending_data() {
    let _g = GUARD.lock().unwrap();
    prof::enable();
    {
        let _a = prof::scope("doomed");
    }
    prof::reset();
    let report = prof::take_report();
    prof::disable();
    assert!(report.scopes.is_empty());
}

#[test]
fn table_renders_every_scope_row() {
    let report = profiled(|| {
        let _a = prof::scope("row_a");
        let _b = prof::scope("row_b");
    });
    let table = report.to_table();
    assert!(table.contains("row_a"));
    assert!(table.contains("  row_b"), "child row is indented:\n{table}");
}
