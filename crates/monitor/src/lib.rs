//! Online health monitoring for clanbft runs (zero external deps).
//!
//! The rest of the observability stack explains a run after it ends
//! (flight recorder, spans, `clanbft-inspect`); this crate watches a run
//! while it is alive. A [`HealthMonitor`] taps the existing telemetry
//! stream — fanned out per party with [`TeeRecorder`] via
//! [`Telemetry::tee_with`] — and feeds a streaming [`DetectorBank`]:
//!
//! * **commit-stall watchdog** — a party's newest commit lags the cluster
//!   frontier beyond the threshold (judged by the *other* parties'
//!   progress, never by wall time, so quiescent run tails stay silent);
//! * **round skew** — a party's entered round trails the cluster maximum;
//! * **buffer growth** — a `buf.*` occupancy gauge crosses its high-water
//!   mark (clears only when all are back below the low-water mark);
//! * **pull-retry storm** — retries clustered in a rolling window, the
//!   signature of withholding;
//! * **evidence spike** — Byzantine evidence accumulating against a
//!   culprit;
//! * **mempool collapse** — capacity rejections clustered in a window;
//! * **WAL degradation** — slow fsyncs or oversized checkpoints.
//!
//! Each detector emits typed [`Alert`]s with hysteresis (fire/clear pairs,
//! dedup while held, per-detector rate caps), so a benign run's alert
//! stream is empty *by construction*. A tribe-level aggregation
//! ([`DetectorBank::assess`]) merges per-party state into one
//! [`Verdict`] — healthy / degraded / stalled — with the minority view
//! attributed to specific parties, and periodic [`HealthSnapshot`]s are
//! exportable as NDJSON lines or a Prometheus-style text exposition.
//!
//! The same [`DetectorBank`] replays recorded traces offline
//! ([`replay_events`], used by `clanbft-inspect alerts`), so online and
//! post-mortem verdicts cannot drift.
//!
//! [`TeeRecorder`]: clanbft_telemetry::TeeRecorder
//! [`Telemetry::tee_with`]: clanbft_telemetry::Telemetry::tee_with

pub mod alert;
pub mod config;
pub mod detect;
pub mod health;

pub use alert::{Alert, AlertKind, Detector, Severity, DETECTOR_COUNT};
pub use config::MonitorConfig;
pub use detect::DetectorBank;
pub use health::{prometheus_exposition, HealthSnapshot, Verdict};

use clanbft_telemetry::{Event, Recorder, Stamped};
use clanbft_types::{Micros, PartyId};
use std::sync::{Arc, Mutex};

/// The shared online monitor: a cloneable handle over one [`DetectorBank`].
///
/// Wire-up: for each party, tee `monitor.probe(party)` into the node's
/// telemetry so party-anonymous gauge/counter/histogram samples arrive
/// attributed; tee `monitor.observer()` into the simulator's handle so the
/// globally-stamped event stream (which carries its own party) arrives
/// exactly once.
///
/// The bank sits behind a mutex. In the single-threaded simulator the lock
/// is never contended; under the threaded live transport it serialises the
/// parties' streams, which is exactly the merge the detectors need.
#[derive(Clone)]
pub struct HealthMonitor {
    bank: Arc<Mutex<DetectorBank>>,
}

impl Default for HealthMonitor {
    fn default() -> HealthMonitor {
        HealthMonitor::new(MonitorConfig::default())
    }
}

impl HealthMonitor {
    /// A fresh monitor with the given thresholds.
    pub fn new(cfg: MonitorConfig) -> HealthMonitor {
        HealthMonitor {
            bank: Arc::new(Mutex::new(DetectorBank::new(cfg))),
        }
    }

    /// Registers `n` parties (0..n) up front so cluster verdicts cover
    /// parties that never produce an event (e.g. crashed at startup).
    pub fn expect_parties(&self, n: u32) {
        let mut bank = self.lock();
        for p in 0..n {
            bank.register(PartyId(p));
        }
    }

    /// A recorder that attributes metric samples to `party` and forwards
    /// events (which carry their own stamp party). Tee it into that
    /// party's node telemetry.
    pub fn probe(&self, party: PartyId) -> Arc<dyn Recorder> {
        Arc::new(PartyProbe {
            monitor: self.clone(),
            party,
        })
    }

    /// An event-only recorder for globally-scoped telemetry handles (the
    /// simulator's): events flow to the detectors, metric samples are
    /// dropped because they cannot be attributed to a party.
    pub fn observer(&self) -> Arc<dyn Recorder> {
        Arc::new(Observer {
            monitor: self.clone(),
        })
    }

    /// Runs `f` against the bank (alerts, snapshots, assess, settle, ...).
    pub fn with_bank<T>(&self, f: impl FnOnce(&mut DetectorBank) -> T) -> T {
        f(&mut self.lock())
    }

    /// Expires rolling windows at the current event-time and emits
    /// resulting clears. Call once at end of run, before the final verdict.
    pub fn settle(&self) {
        self.lock().settle();
    }

    /// The current cluster-health verdict.
    pub fn assess(&self) -> HealthSnapshot {
        self.lock().assess()
    }

    /// Every alert emitted so far.
    pub fn alerts(&self) -> Vec<Alert> {
        self.lock().alerts().to_vec()
    }

    /// The full alert stream as NDJSON, one line per alert (empty string
    /// for an alert-free run).
    pub fn alerts_ndjson(&self) -> String {
        let bank = self.lock();
        let mut out = String::new();
        for a in bank.alerts() {
            out.push_str(&a.to_ndjson());
            out.push('\n');
        }
        out
    }

    /// The periodic snapshot history as NDJSON, one line per snapshot.
    pub fn snapshots_ndjson(&self) -> String {
        let bank = self.lock();
        let mut out = String::new();
        for s in bank.snapshots() {
            out.push_str(&s.to_ndjson());
            out.push('\n');
        }
        out
    }

    /// Prometheus-style text exposition of the current health state.
    pub fn prometheus(&self) -> String {
        let bank = self.lock();
        prometheus_exposition(&bank.assess(), &bank.active(), &bank.fire_totals())
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, DetectorBank> {
        self.bank.lock().expect("monitor lock")
    }
}

struct PartyProbe {
    monitor: HealthMonitor,
    party: PartyId,
}

impl Recorder for PartyProbe {
    fn record(&self, metric: &'static str, value: u64) {
        self.monitor
            .lock()
            .observe_histogram(self.party, metric, value);
    }

    fn add(&self, counter: &'static str, delta: u64) {
        self.monitor
            .lock()
            .observe_counter(self.party, counter, delta);
    }

    fn gauge(&self, gauge: &'static str, value: u64) {
        self.monitor.lock().observe_gauge(self.party, gauge, value);
    }

    fn event(&self, at: Micros, party: PartyId, event: Event) {
        self.monitor
            .lock()
            .observe_event(&Stamped { at, party, event });
    }
}

struct Observer {
    monitor: HealthMonitor,
}

impl Recorder for Observer {
    fn record(&self, _metric: &'static str, _value: u64) {}
    fn add(&self, _counter: &'static str, _delta: u64) {}
    fn gauge(&self, _gauge: &'static str, _value: u64) {}

    fn event(&self, at: Micros, party: PartyId, event: Event) {
        self.monitor
            .lock()
            .observe_event(&Stamped { at, party, event });
    }
}

/// Replays a recorded event stream through the detector catalogue offline.
///
/// Only the event-driven detectors (commit stall, round skew, pull-retry
/// storm, evidence spike) see input here: gauge/counter/histogram samples
/// are not part of the event log, so buffer-growth, mempool-collapse and
/// WAL-degradation verdicts are online-only. The bank is settled (windows
/// expired, tail clears emitted) before being returned.
pub fn replay_events(events: &[Stamped], parties: u32, cfg: MonitorConfig) -> DetectorBank {
    let mut bank = DetectorBank::new(cfg);
    for p in 0..parties {
        bank.register(PartyId(p));
    }
    for s in events {
        bank.observe_event(s);
    }
    bank.settle();
    bank
}

#[cfg(test)]
mod tests {
    use super::*;
    use clanbft_telemetry::Telemetry;
    use clanbft_types::Round;

    #[test]
    fn probe_attributes_metrics_and_routes_events() {
        let monitor = HealthMonitor::default();
        monitor.expect_parties(4);
        let probe = monitor.probe(PartyId(2));
        // A buffer gauge sample through party 2's probe fires for party 2.
        probe.gauge(clanbft_telemetry::counters::BUF_DAG_PENDING, 10_000);
        assert!(monitor.with_bank(|b| b.is_active(Detector::BufferGrowth, PartyId(2))));
        // An event through the probe keeps its own stamp party.
        probe.event(
            Micros::from_millis(100),
            PartyId(0),
            Event::EvidenceRecorded {
                kind: "double_vote",
                round: Round(1),
                culprit: PartyId(3),
            },
        );
        assert!(monitor.with_bank(|b| b.is_active(Detector::EvidenceSpike, PartyId(3))));
    }

    #[test]
    fn observer_drops_metrics_keeps_events() {
        let monitor = HealthMonitor::default();
        monitor.expect_parties(2);
        let obs = monitor.observer();
        obs.gauge(clanbft_telemetry::counters::BUF_DAG_PENDING, 10_000);
        assert!(monitor.alerts().is_empty());
        obs.event(
            Micros::from_millis(10),
            PartyId(1),
            Event::RoundEntered { round: Round(1) },
        );
        assert_eq!(monitor.with_bank(|b| b.max_round()), 1);
    }

    #[test]
    fn tee_with_fans_into_the_monitor() {
        let monitor = HealthMonitor::default();
        monitor.expect_parties(2);
        let (base, rec) = Telemetry::mem();
        let teed = base.tee_with(monitor.probe(PartyId(0)));
        teed.event(
            Micros::from_millis(5),
            PartyId(0),
            Event::RoundEntered { round: Round(2) },
        );
        // Both sinks saw the event.
        assert_eq!(rec.events().len(), 1);
        assert_eq!(monitor.with_bank(|b| b.max_round()), 2);
    }

    #[test]
    fn replay_matches_online_for_event_detectors() {
        let events: Vec<Stamped> = (0..8u64)
            .flat_map(|step| {
                (0..3u32).map(move |p| Stamped {
                    at: Micros::from_millis(step * 400 + p as u64),
                    party: PartyId(p),
                    event: Event::VertexCommitted {
                        round: Round(step),
                        source: PartyId(p),
                        leader: true,
                        sequence: step,
                    },
                })
            })
            .collect();
        // Party 3 never commits: replay must fire its stall.
        let bank = replay_events(&events, 4, MonitorConfig::default());
        assert!(bank.is_active(Detector::CommitStall, PartyId(3)));
        let online = HealthMonitor::default();
        online.expect_parties(4);
        let obs = online.observer();
        for s in &events {
            obs.event(s.at, s.party, s.event.clone());
        }
        online.settle();
        let online_ndjson = online.alerts_ndjson();
        let offline_ndjson: String = bank.alerts().iter().map(|a| a.to_ndjson() + "\n").collect();
        assert_eq!(online_ndjson, offline_ndjson);
    }

    #[test]
    fn prometheus_export_covers_verdict_and_actives() {
        let monitor = HealthMonitor::default();
        monitor.expect_parties(2);
        monitor
            .probe(PartyId(1))
            .gauge(clanbft_telemetry::counters::BUF_RBC_INSTANCES, 1 << 20);
        let text = monitor.prometheus();
        assert!(text.contains("clanbft_health_verdict 1\n"), "{text}");
        assert!(
            text.contains("clanbft_alert_active{detector=\"buffer_growth\",party=\"1\"} 1\n"),
            "{text}"
        );
    }
}
