//! Typed alerts: the monitor's one output vocabulary.
//!
//! Every detector emits the same shape — a [`Detector`] name, a fire/clear
//! transition, a severity, the party the finding is attributed to, the
//! round context and a human-readable evidence string. Alerts only ever
//! mark *transitions* (hysteresis lives in the detector bank), so a benign
//! run's alert stream is empty by construction rather than by filtering.

use clanbft_telemetry::JsonObj;
use clanbft_types::{Micros, PartyId, Round};

/// The catalogue of online detectors.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Detector {
    /// A party's commit frontier lags the cluster's newest commit by more
    /// than the configured stall threshold (no `Committed` within k·δ̂ of
    /// the parties that *are* progressing).
    CommitStall,
    /// A party's current round trails the cluster's maximum entered round
    /// by the configured number of rounds.
    RoundSkew,
    /// A bounded buffer (`buf.*` occupancy gauge) crossed its high-water
    /// mark.
    BufferGrowth,
    /// Pull retries for a party clustered inside the rolling window — the
    /// signature of a withholding sender or a dead bulk link.
    PullRetryStorm,
    /// Byzantine evidence accumulated against a party inside the rolling
    /// window.
    EvidenceSpike,
    /// The mempool rejected admissions for capacity inside the rolling
    /// window — client backpressure, the saturation signal.
    MempoolCollapse,
    /// Durability degradation: slow WAL fsyncs clustered in the window, or
    /// a checkpoint beyond the size bound.
    WalDegradation,
}

/// How many detectors exist (sizes the per-party hysteresis array).
pub const DETECTOR_COUNT: usize = 7;

impl Detector {
    /// Every detector, in catalogue order.
    pub const ALL: [Detector; DETECTOR_COUNT] = [
        Detector::CommitStall,
        Detector::RoundSkew,
        Detector::BufferGrowth,
        Detector::PullRetryStorm,
        Detector::EvidenceSpike,
        Detector::MempoolCollapse,
        Detector::WalDegradation,
    ];

    /// Stable label used in NDJSON alert lines and Prometheus series.
    pub fn label(self) -> &'static str {
        match self {
            Detector::CommitStall => "commit_stall",
            Detector::RoundSkew => "round_skew",
            Detector::BufferGrowth => "buffer_growth",
            Detector::PullRetryStorm => "pull_retry_storm",
            Detector::EvidenceSpike => "evidence_spike",
            Detector::MempoolCollapse => "mempool_collapse",
            Detector::WalDegradation => "wal_degradation",
        }
    }

    /// Index into per-party hysteresis state.
    pub fn index(self) -> usize {
        match self {
            Detector::CommitStall => 0,
            Detector::RoundSkew => 1,
            Detector::BufferGrowth => 2,
            Detector::PullRetryStorm => 3,
            Detector::EvidenceSpike => 4,
            Detector::MempoolCollapse => 5,
            Detector::WalDegradation => 6,
        }
    }

    /// The severity this detector fires at.
    pub fn severity(self) -> Severity {
        match self {
            Detector::CommitStall | Detector::EvidenceSpike => Severity::Critical,
            _ => Severity::Warning,
        }
    }
}

/// Alert severity.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Severity {
    /// Degraded but live.
    Warning,
    /// Progress or safety at risk.
    Critical,
}

impl Severity {
    /// Stable label used in NDJSON alert lines.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Critical => "critical",
        }
    }
}

/// Whether an alert marks a condition starting or ending.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AlertKind {
    /// The condition began.
    Fire,
    /// The condition ended.
    Clear,
}

impl AlertKind {
    /// Stable label used in NDJSON alert lines.
    pub fn label(self) -> &'static str {
        match self {
            AlertKind::Fire => "fire",
            AlertKind::Clear => "clear",
        }
    }
}

/// One fire or clear transition of one detector for one party.
#[derive(Clone, Debug)]
pub struct Alert {
    /// Simulated time of the transition.
    pub at: Micros,
    /// Which detector transitioned.
    pub detector: Detector,
    /// Fire or clear.
    pub kind: AlertKind,
    /// Severity (fixed per detector).
    pub severity: Severity,
    /// The party the finding is attributed to (the laggard, the culprit,
    /// the saturated node — per detector semantics).
    pub party: PartyId,
    /// Round context at transition time (the party's current round).
    pub round: Round,
    /// Human-readable supporting evidence, deterministic for sim-time
    /// driven detectors.
    pub evidence: String,
}

impl Alert {
    /// Renders the alert as one NDJSON line (no trailing newline).
    pub fn to_ndjson(&self) -> String {
        JsonObj::new()
            .u64("at", self.at.0)
            .str("alert", self.kind.label())
            .str("detector", self.detector.label())
            .str("severity", self.severity.label())
            .u64("party", self.party.0 as u64)
            .u64("round", self.round.0)
            .str("evidence", &self.evidence)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique_and_indexed() {
        let mut seen = std::collections::BTreeSet::new();
        for (i, d) in Detector::ALL.iter().enumerate() {
            assert_eq!(d.index(), i, "catalogue order must match index");
            assert!(seen.insert(d.label()), "duplicate label {}", d.label());
        }
        assert_eq!(seen.len(), DETECTOR_COUNT);
    }

    #[test]
    fn ndjson_line_is_stable() {
        let a = Alert {
            at: Micros(1_500_000),
            detector: Detector::CommitStall,
            kind: AlertKind::Fire,
            severity: Severity::Critical,
            party: PartyId(2),
            round: Round(7),
            evidence: "no commit for 1600000us behind cluster frontier".to_string(),
        };
        assert_eq!(
            a.to_ndjson(),
            r#"{"at":1500000,"alert":"fire","detector":"commit_stall","severity":"critical","party":2,"round":7,"evidence":"no commit for 1600000us behind cluster frontier"}"#
        );
    }
}
