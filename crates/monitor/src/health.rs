//! Tribe-level health aggregation: one verdict over all parties' detector
//! state, with the minority view attributed to specific parties, plus the
//! machine-readable exports (NDJSON snapshot line, Prometheus-style text
//! exposition).

use crate::alert::Detector;
use clanbft_telemetry::JsonObj;
use clanbft_types::{Micros, PartyId};

/// The cluster-level health verdict.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// No detector active on any party.
    Healthy,
    /// At least one detector active, but a commit-capable majority is
    /// progressing.
    Degraded,
    /// More than a third of the parties hold an active commit-stall —
    /// cluster progress itself is at risk.
    Stalled,
}

impl Verdict {
    /// Stable label used in NDJSON and Prometheus exports.
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Healthy => "healthy",
            Verdict::Degraded => "degraded",
            Verdict::Stalled => "stalled",
        }
    }

    /// Numeric encoding for the Prometheus gauge (0 healthy, 1 degraded,
    /// 2 stalled).
    pub fn code(self) -> u64 {
        match self {
            Verdict::Healthy => 0,
            Verdict::Degraded => 1,
            Verdict::Stalled => 2,
        }
    }
}

/// One point-in-time cluster health assessment.
#[derive(Clone, Debug)]
pub struct HealthSnapshot {
    /// Sim-time of the assessment.
    pub at: Micros,
    /// The merged verdict.
    pub verdict: Verdict,
    /// Parties known to the monitor.
    pub parties: u64,
    /// Active (fired, not yet cleared) detector conditions across all
    /// parties.
    pub active_alerts: u64,
    /// Cluster-wide maximum entered round.
    pub max_round: u64,
    /// Parties with an active commit-stall.
    pub stalled_parties: Vec<PartyId>,
    /// Parties with *any* active detector (superset of the stalled set).
    pub degraded_parties: Vec<PartyId>,
}

impl HealthSnapshot {
    /// Renders the snapshot as one NDJSON line (no trailing newline).
    pub fn to_ndjson(&self) -> String {
        let stalled: Vec<u64> = self.stalled_parties.iter().map(|p| p.0 as u64).collect();
        let degraded: Vec<u64> = self.degraded_parties.iter().map(|p| p.0 as u64).collect();
        JsonObj::new()
            .u64("at", self.at.0)
            .str("health", self.verdict.label())
            .u64("parties", self.parties)
            .u64("active_alerts", self.active_alerts)
            .u64("max_round", self.max_round)
            .arr_u64("stalled", &stalled)
            .arr_u64("degraded", &degraded)
            .finish()
    }
}

/// Renders a Prometheus-style text exposition of the current health state.
///
/// Series: `clanbft_health_verdict` (0/1/2), `clanbft_health_parties`,
/// `clanbft_health_max_round`, `clanbft_alert_active{detector,party}` for
/// every currently-active condition, and `clanbft_alert_fires_total
/// {detector}` cumulative fire counts.
pub fn prometheus_exposition(
    snap: &HealthSnapshot,
    active: &[(Detector, PartyId)],
    fire_totals: &[(Detector, u64)],
) -> String {
    let mut out = String::new();
    out.push_str("# TYPE clanbft_health_verdict gauge\n");
    out.push_str(&format!("clanbft_health_verdict {}\n", snap.verdict.code()));
    out.push_str("# TYPE clanbft_health_parties gauge\n");
    out.push_str(&format!("clanbft_health_parties {}\n", snap.parties));
    out.push_str("# TYPE clanbft_health_max_round gauge\n");
    out.push_str(&format!("clanbft_health_max_round {}\n", snap.max_round));
    out.push_str("# TYPE clanbft_alert_active gauge\n");
    for (d, p) in active {
        out.push_str(&format!(
            "clanbft_alert_active{{detector=\"{}\",party=\"{}\"}} 1\n",
            d.label(),
            p.0
        ));
    }
    out.push_str("# TYPE clanbft_alert_fires_total counter\n");
    for (d, n) in fire_totals {
        out.push_str(&format!(
            "clanbft_alert_fires_total{{detector=\"{}\"}} {}\n",
            d.label(),
            n
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_ndjson_is_stable() {
        let s = HealthSnapshot {
            at: Micros(2_000_000),
            verdict: Verdict::Degraded,
            parties: 4,
            active_alerts: 2,
            max_round: 9,
            stalled_parties: vec![PartyId(3)],
            degraded_parties: vec![PartyId(1), PartyId(3)],
        };
        assert_eq!(
            s.to_ndjson(),
            r#"{"at":2000000,"health":"degraded","parties":4,"active_alerts":2,"max_round":9,"stalled":[3],"degraded":[1,3]}"#
        );
    }

    #[test]
    fn exposition_lists_active_series() {
        let s = HealthSnapshot {
            at: Micros(1),
            verdict: Verdict::Stalled,
            parties: 4,
            active_alerts: 1,
            max_round: 3,
            stalled_parties: vec![PartyId(0)],
            degraded_parties: vec![PartyId(0)],
        };
        let text = prometheus_exposition(
            &s,
            &[(Detector::CommitStall, PartyId(0))],
            &[(Detector::CommitStall, 2)],
        );
        assert!(text.contains("clanbft_health_verdict 2\n"));
        assert!(text.contains("clanbft_alert_active{detector=\"commit_stall\",party=\"0\"} 1\n"));
        assert!(text.contains("clanbft_alert_fires_total{detector=\"commit_stall\"} 2\n"));
    }
}
