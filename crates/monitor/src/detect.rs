//! The streaming detector bank: per-party rolling windows, hysteresis and
//! alert emission.
//!
//! The bank is a pure state machine over the telemetry surface — stamped
//! protocol events plus party-tagged gauge/counter/histogram samples. Time
//! never comes from the host clock: `now` is the maximum event stamp seen,
//! so the same event stream always produces the same alert stream
//! (determinism pins rely on this). The one host-measured input is the WAL
//! fsync-latency histogram; its detector therefore only appears in runs
//! with durable storage and is excluded from byte-exact pins.

use crate::alert::{Alert, AlertKind, Detector, DETECTOR_COUNT};
use crate::config::MonitorConfig;
use crate::health::{HealthSnapshot, Verdict};
use clanbft_telemetry::{counters, Event, RbcPhase, Stamped};
use clanbft_types::{Micros, PartyId, Round};
use std::collections::{BTreeMap, VecDeque};

/// Fire/clear state of one detector for one party.
#[derive(Default, Clone)]
struct Hysteresis {
    /// Condition currently held.
    active: bool,
    /// Fire transitions emitted so far.
    fires: u64,
    /// Transitions swallowed by the rate cap.
    suppressed: u64,
    /// The active condition's fire was suppressed, so its clear must be
    /// suppressed too (the emitted stream stays pairwise balanced).
    suppressing: bool,
}

/// Everything the bank tracks about one party.
#[derive(Default)]
struct PartyState {
    /// Last round entered.
    round: u64,
    /// Stamp of the party's newest commit.
    last_commit_at: Option<Micros>,
    /// Pull-retry stamps inside the rolling window.
    retries: VecDeque<Micros>,
    /// Evidence stamps (this party as culprit) inside the window.
    evidence: VecDeque<Micros>,
    /// Capacity-rejection stamps/deltas inside the window.
    mempool_rejects: VecDeque<(Micros, u64)>,
    /// Slow-fsync stamps inside the window.
    slow_fsyncs: VecDeque<Micros>,
    /// Newest value of every `buf.*` occupancy gauge.
    buf_gauges: BTreeMap<&'static str, u64>,
    /// Per-detector fire/clear state.
    hys: [Hysteresis; DETECTOR_COUNT],
}

impl PartyState {
    fn any_active(&self) -> bool {
        self.hys.iter().any(|h| h.active)
    }
}

/// The streaming detector bank shared by the online monitor and offline
/// replay.
pub struct DetectorBank {
    cfg: MonitorConfig,
    parties: BTreeMap<PartyId, PartyState>,
    /// Maximum event stamp seen (the bank's clock).
    now: Micros,
    /// First event stamp seen (stall baseline for parties that never
    /// commit).
    started_at: Option<Micros>,
    /// Cluster-wide newest commit stamp and the sequence it carried.
    frontier_at: Option<Micros>,
    frontier_seq: u64,
    /// Cluster-wide maximum entered round.
    max_round: u64,
    alerts: Vec<Alert>,
    snapshots: Vec<HealthSnapshot>,
    snapshots_skipped: u64,
    last_snapshot_at: Option<Micros>,
}

impl DetectorBank {
    /// An empty bank with the given thresholds.
    pub fn new(cfg: MonitorConfig) -> DetectorBank {
        DetectorBank {
            cfg,
            parties: BTreeMap::new(),
            now: Micros::ZERO,
            started_at: None,
            frontier_at: None,
            frontier_seq: 0,
            max_round: 0,
            alerts: Vec::new(),
            snapshots: Vec::new(),
            snapshots_skipped: 0,
            last_snapshot_at: None,
        }
    }

    /// Registers a party so cluster verdicts cover it even before its first
    /// event arrives.
    pub fn register(&mut self, party: PartyId) {
        self.parties.entry(party).or_default();
    }

    /// The bank's thresholds.
    pub fn config(&self) -> &MonitorConfig {
        &self.cfg
    }

    /// Consumes one stamped protocol event.
    pub fn observe_event(&mut self, s: &Stamped) {
        self.advance(s.at);
        match &s.event {
            Event::RoundEntered { round } => self.on_round_entered(s.party, *round, s.at),
            Event::VertexCommitted { sequence, .. } => self.on_commit(s.party, *sequence, s.at),
            Event::Rbc {
                phase: RbcPhase::PullRetry,
                round,
                source,
            } => self.on_pull_retry(s.party, *round, *source, s.at),
            Event::EvidenceRecorded { culprit, .. } => self.on_evidence(*culprit, s.at),
            _ => {}
        }
        self.maybe_snapshot();
    }

    /// Consumes one party-tagged gauge sample.
    pub fn observe_gauge(&mut self, party: PartyId, gauge: &'static str, value: u64) {
        if !gauge.starts_with("buf.") {
            return;
        }
        self.register(party);
        let cfg = self.cfg.clone();
        let state = self.parties.get_mut(&party).expect("registered");
        state.buf_gauges.insert(gauge, value);
        let over: Vec<(&'static str, u64)> = state
            .buf_gauges
            .iter()
            .filter(|(_, v)| **v >= cfg.buffer_hi)
            .map(|(k, v)| (*k, *v))
            .collect();
        let all_low = state.buf_gauges.values().all(|v| *v <= cfg.buffer_lo);
        let (now, round) = (self.now, Round(state.round));
        if let Some((name, v)) = over.first() {
            let evidence = format!("{name} at {v} >= {}", cfg.buffer_hi);
            Self::transition(
                &mut self.alerts,
                &cfg,
                state,
                party,
                Detector::BufferGrowth,
                true,
                now,
                round,
                evidence,
            );
        } else if all_low {
            let evidence = format!("all buf.* gauges <= {}", cfg.buffer_lo);
            Self::transition(
                &mut self.alerts,
                &cfg,
                state,
                party,
                Detector::BufferGrowth,
                false,
                now,
                round,
                evidence,
            );
        }
    }

    /// Consumes one party-tagged counter increment.
    pub fn observe_counter(&mut self, party: PartyId, counter: &'static str, delta: u64) {
        if counter != counters::MEMPOOL_REJECTED_FULL || delta == 0 {
            return;
        }
        self.register(party);
        let cfg = self.cfg.clone();
        let now = self.now;
        let state = self.parties.get_mut(&party).expect("registered");
        state.mempool_rejects.push_back((now, delta));
        let cut = now.saturating_sub(cfg.mempool_window);
        while state
            .mempool_rejects
            .front()
            .is_some_and(|(at, _)| *at < cut)
        {
            state.mempool_rejects.pop_front();
        }
        let total: u64 = state.mempool_rejects.iter().map(|(_, d)| d).sum();
        if total >= cfg.mempool_reject_fire {
            let evidence = format!(
                "{total} capacity rejections in {}us window",
                cfg.mempool_window.0
            );
            let round = Round(state.round);
            Self::transition(
                &mut self.alerts,
                &cfg,
                state,
                party,
                Detector::MempoolCollapse,
                true,
                now,
                round,
                evidence,
            );
        }
    }

    /// Consumes one party-tagged histogram sample.
    pub fn observe_histogram(&mut self, party: PartyId, metric: &'static str, value: u64) {
        let cfg = self.cfg.clone();
        let now = self.now;
        match metric {
            counters::WAL_FSYNC_MICROS if value >= cfg.wal_fsync_slow_us => {
                self.register(party);
                let state = self.parties.get_mut(&party).expect("registered");
                state.slow_fsyncs.push_back(now);
                let cut = now.saturating_sub(cfg.wal_window);
                while state.slow_fsyncs.front().is_some_and(|at| *at < cut) {
                    state.slow_fsyncs.pop_front();
                }
                if state.slow_fsyncs.len() as u64 >= cfg.wal_fsync_fire {
                    let evidence = format!(
                        "{} fsyncs slower than {}us in window",
                        state.slow_fsyncs.len(),
                        cfg.wal_fsync_slow_us
                    );
                    let round = Round(state.round);
                    Self::transition(
                        &mut self.alerts,
                        &cfg,
                        state,
                        party,
                        Detector::WalDegradation,
                        true,
                        now,
                        round,
                        evidence,
                    );
                }
            }
            counters::CHECKPOINT_BYTES if value >= cfg.checkpoint_bytes_hi => {
                self.register(party);
                let state = self.parties.get_mut(&party).expect("registered");
                let evidence =
                    format!("checkpoint of {value} bytes >= {}", cfg.checkpoint_bytes_hi);
                let round = Round(state.round);
                Self::transition(
                    &mut self.alerts,
                    &cfg,
                    state,
                    party,
                    Detector::WalDegradation,
                    true,
                    now,
                    round,
                    evidence,
                );
            }
            _ => {}
        }
    }

    // --- event handlers -----------------------------------------------------

    fn advance(&mut self, at: Micros) {
        if self.started_at.is_none() {
            self.started_at = Some(at);
        }
        self.now = self.now.max(at);
    }

    fn on_round_entered(&mut self, party: PartyId, round: Round, at: Micros) {
        self.register(party);
        let cfg = self.cfg.clone();
        self.parties.get_mut(&party).expect("registered").round = round.0;
        if round.0 > self.max_round {
            self.max_round = round.0;
            // The frontier moved: re-judge every party's skew.
            let max_round = self.max_round;
            for (&pid, state) in self.parties.iter_mut() {
                let behind = max_round.saturating_sub(state.round);
                let fire = behind >= cfg.skew_rounds;
                let evidence = if fire {
                    format!("at round {} while cluster reached {max_round}", state.round)
                } else {
                    format!("caught up to round {}", state.round)
                };
                let r = Round(state.round);
                Self::transition(
                    &mut self.alerts,
                    &cfg,
                    state,
                    pid,
                    Detector::RoundSkew,
                    fire,
                    at,
                    r,
                    evidence,
                );
            }
        } else {
            // This party advanced within a known frontier: it may have just
            // caught back up.
            let behind = self.max_round.saturating_sub(round.0);
            if behind < cfg.skew_rounds {
                let state = self.parties.get_mut(&party).expect("registered");
                let evidence = format!("caught up to round {}", round.0);
                Self::transition(
                    &mut self.alerts,
                    &cfg,
                    state,
                    party,
                    Detector::RoundSkew,
                    false,
                    at,
                    round,
                    evidence,
                );
            }
        }
    }

    fn on_commit(&mut self, party: PartyId, sequence: u64, at: Micros) {
        self.register(party);
        let cfg = self.cfg.clone();
        {
            let state = self.parties.get_mut(&party).expect("registered");
            state.last_commit_at = Some(at);
            let round = Round(state.round);
            let evidence = format!("committed seq {sequence}");
            Self::transition(
                &mut self.alerts,
                &cfg,
                state,
                party,
                Detector::CommitStall,
                false,
                at,
                round,
                evidence,
            );
        }
        let advanced = self.frontier_at.map_or(true, |f| at > f);
        if advanced {
            self.frontier_at = Some(at);
            self.frontier_seq = self.frontier_seq.max(sequence);
            self.scan_stalls(at);
            self.sweep_windows(at);
        }
    }

    fn on_pull_retry(&mut self, party: PartyId, round: Round, source: PartyId, at: Micros) {
        self.register(party);
        let cfg = self.cfg.clone();
        let state = self.parties.get_mut(&party).expect("registered");
        state.retries.push_back(at);
        let cut = at.saturating_sub(cfg.retry_window);
        while state.retries.front().is_some_and(|t| *t < cut) {
            state.retries.pop_front();
        }
        if state.retries.len() as u64 >= cfg.retry_fire {
            let evidence = format!(
                "{} pull retries in {}us window (latest for round {} from party {})",
                state.retries.len(),
                cfg.retry_window.0,
                round.0,
                source.0
            );
            let r = Round(state.round);
            Self::transition(
                &mut self.alerts,
                &cfg,
                state,
                party,
                Detector::PullRetryStorm,
                true,
                at,
                r,
                evidence,
            );
        }
    }

    fn on_evidence(&mut self, culprit: PartyId, at: Micros) {
        self.register(culprit);
        let cfg = self.cfg.clone();
        let state = self.parties.get_mut(&culprit).expect("registered");
        state.evidence.push_back(at);
        let cut = at.saturating_sub(cfg.evidence_window);
        while state.evidence.front().is_some_and(|t| *t < cut) {
            state.evidence.pop_front();
        }
        if state.evidence.len() as u64 >= cfg.evidence_fire {
            let evidence = format!(
                "{} evidence records in {}us window",
                state.evidence.len(),
                cfg.evidence_window.0
            );
            let r = Round(state.round);
            Self::transition(
                &mut self.alerts,
                &cfg,
                state,
                culprit,
                Detector::EvidenceSpike,
                true,
                at,
                r,
                evidence,
            );
        }
    }

    // --- periodic scans -----------------------------------------------------

    /// Judges every party's commit lag against the cluster frontier. Runs
    /// whenever the frontier advances: a stalled party is detected by the
    /// *others'* progress, so a quiescent run end (nobody committing) never
    /// fires.
    fn scan_stalls(&mut self, at: Micros) {
        let cfg = self.cfg.clone();
        let Some(frontier) = self.frontier_at else {
            return;
        };
        let (started, frontier_seq) = (self.started_at.unwrap_or(Micros::ZERO), self.frontier_seq);
        for (&pid, state) in self.parties.iter_mut() {
            let last = state.last_commit_at.unwrap_or(started);
            let lag = frontier.saturating_sub(last);
            if lag > cfg.stall_after {
                let evidence = format!(
                    "no commit for {}us behind cluster frontier (seq {frontier_seq})",
                    lag.0
                );
                let r = Round(state.round);
                Self::transition(
                    &mut self.alerts,
                    &cfg,
                    state,
                    pid,
                    Detector::CommitStall,
                    true,
                    at,
                    r,
                    evidence,
                );
            }
        }
    }

    /// Expires rolling windows and clears windowed detectors whose
    /// condition has drained. Driven off commit-frontier advances and
    /// snapshots, which is frequent enough for prompt clears.
    fn sweep_windows(&mut self, at: Micros) {
        let cfg = self.cfg.clone();
        for (&pid, state) in self.parties.iter_mut() {
            let cut = at.saturating_sub(cfg.retry_window);
            while state.retries.front().is_some_and(|t| *t < cut) {
                state.retries.pop_front();
            }
            let cut = at.saturating_sub(cfg.evidence_window);
            while state.evidence.front().is_some_and(|t| *t < cut) {
                state.evidence.pop_front();
            }
            let cut = at.saturating_sub(cfg.mempool_window);
            while state.mempool_rejects.front().is_some_and(|(t, _)| *t < cut) {
                state.mempool_rejects.pop_front();
            }
            let cut = at.saturating_sub(cfg.wal_window);
            while state.slow_fsyncs.front().is_some_and(|t| *t < cut) {
                state.slow_fsyncs.pop_front();
            }
            let r = Round(state.round);
            if state.retries.len() as u64 <= cfg.retry_clear {
                let evidence = format!("window drained to {} retries", state.retries.len());
                Self::transition(
                    &mut self.alerts,
                    &cfg,
                    state,
                    pid,
                    Detector::PullRetryStorm,
                    false,
                    at,
                    r,
                    evidence,
                );
            }
            if state.evidence.is_empty() {
                Self::transition(
                    &mut self.alerts,
                    &cfg,
                    state,
                    pid,
                    Detector::EvidenceSpike,
                    false,
                    at,
                    r,
                    "evidence window drained".to_string(),
                );
            }
            if state.mempool_rejects.is_empty() {
                Self::transition(
                    &mut self.alerts,
                    &cfg,
                    state,
                    pid,
                    Detector::MempoolCollapse,
                    false,
                    at,
                    r,
                    "rejection window drained".to_string(),
                );
            }
            if state.slow_fsyncs.is_empty() {
                Self::transition(
                    &mut self.alerts,
                    &cfg,
                    state,
                    pid,
                    Detector::WalDegradation,
                    false,
                    at,
                    r,
                    "slow-fsync window drained".to_string(),
                );
            }
        }
    }

    fn maybe_snapshot(&mut self) {
        let due = match self.last_snapshot_at {
            None => true,
            Some(last) => self.now >= last + self.cfg.snapshot_every,
        };
        if !due {
            return;
        }
        self.last_snapshot_at = Some(self.now);
        self.sweep_windows(self.now);
        let snap = self.assess();
        if self.snapshots.len() < self.cfg.snapshot_cap {
            self.snapshots.push(snap);
        } else {
            self.snapshots_skipped += 1;
        }
    }

    /// One clear/fire transition with hysteresis and the rate cap applied.
    #[allow(clippy::too_many_arguments)]
    fn transition(
        alerts: &mut Vec<Alert>,
        cfg: &MonitorConfig,
        state: &mut PartyState,
        party: PartyId,
        detector: Detector,
        fire: bool,
        at: Micros,
        round: Round,
        evidence: String,
    ) {
        let h = &mut state.hys[detector.index()];
        if h.active == fire {
            return;
        }
        h.active = fire;
        if fire {
            h.fires += 1;
            if h.fires > cfg.rate_cap {
                h.suppressed += 1;
                h.suppressing = true;
                return;
            }
        } else if h.suppressing {
            h.suppressing = false;
            h.suppressed += 1;
            return;
        }
        alerts.push(Alert {
            at,
            detector,
            kind: if fire {
                AlertKind::Fire
            } else {
                AlertKind::Clear
            },
            severity: detector.severity(),
            party,
            round,
            evidence,
        });
    }

    // --- readout ------------------------------------------------------------

    /// Every alert emitted so far, in emission order.
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// `(detector, party)` pairs whose condition is currently held.
    pub fn active(&self) -> Vec<(Detector, PartyId)> {
        let mut out = Vec::new();
        for (&pid, state) in &self.parties {
            for d in Detector::ALL {
                if state.hys[d.index()].active {
                    out.push((d, pid));
                }
            }
        }
        out
    }

    /// Whether `detector` is currently firing for `party`.
    pub fn is_active(&self, detector: Detector, party: PartyId) -> bool {
        self.parties
            .get(&party)
            .map(|s| s.hys[detector.index()].active)
            .unwrap_or(false)
    }

    /// Transitions swallowed by the per-detector rate caps.
    pub fn suppressed(&self) -> u64 {
        self.parties
            .values()
            .flat_map(|s| s.hys.iter())
            .map(|h| h.suppressed)
            .sum()
    }

    /// The bank's clock (maximum event stamp seen).
    pub fn now(&self) -> Micros {
        self.now
    }

    /// Cluster-wide maximum entered round.
    pub fn max_round(&self) -> u64 {
        self.max_round
    }

    /// Expires windows at the current clock and emits any resulting clears.
    /// Call at end of run before the final verdict so conditions that
    /// drained during the tail are judged cleared.
    pub fn settle(&mut self) {
        let now = self.now;
        self.sweep_windows(now);
    }

    /// The current cluster-health verdict with per-party attribution.
    pub fn assess(&self) -> HealthSnapshot {
        let stalled: Vec<PartyId> = self
            .parties
            .iter()
            .filter(|(_, s)| s.hys[Detector::CommitStall.index()].active)
            .map(|(&p, _)| p)
            .collect();
        let degraded: Vec<PartyId> = self
            .parties
            .iter()
            .filter(|(_, s)| s.any_active())
            .map(|(&p, _)| p)
            .collect();
        let n = self.parties.len();
        let verdict = if n > 0 && stalled.len() * 3 > n {
            Verdict::Stalled
        } else if !degraded.is_empty() {
            Verdict::Degraded
        } else {
            Verdict::Healthy
        };
        let active_alerts = self
            .parties
            .values()
            .flat_map(|s| s.hys.iter())
            .filter(|h| h.active)
            .count() as u64;
        HealthSnapshot {
            at: self.now,
            verdict,
            parties: n as u64,
            active_alerts,
            max_round: self.max_round,
            stalled_parties: stalled,
            degraded_parties: degraded,
        }
    }

    /// The periodic snapshot history (bounded by `snapshot_cap`).
    pub fn snapshots(&self) -> &[HealthSnapshot] {
        &self.snapshots
    }

    /// Snapshots dropped once the history bound was reached.
    pub fn snapshots_skipped(&self) -> u64 {
        self.snapshots_skipped
    }

    /// Fire counts per detector (for the Prometheus exposition).
    pub fn fire_totals(&self) -> [(Detector, u64); DETECTOR_COUNT] {
        let mut out = Detector::ALL.map(|d| (d, 0u64));
        for state in self.parties.values() {
            for d in Detector::ALL {
                out[d.index()].1 += state.hys[d.index()].fires;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank() -> DetectorBank {
        let mut b = DetectorBank::new(MonitorConfig::default());
        for p in 0..4 {
            b.register(PartyId(p));
        }
        b
    }

    fn commit(b: &mut DetectorBank, p: u32, seq: u64, at_ms: u64) {
        b.observe_event(&Stamped {
            at: Micros::from_millis(at_ms),
            party: PartyId(p),
            event: Event::VertexCommitted {
                round: Round(1),
                source: PartyId(p),
                leader: true,
                sequence: seq,
            },
        });
    }

    #[test]
    fn benign_commit_cadence_stays_silent() {
        let mut b = bank();
        for step in 0..20u64 {
            for p in 0..4 {
                commit(&mut b, p, step, step * 300 + p as u64);
            }
        }
        assert!(b.alerts().is_empty(), "alerts: {:?}", b.alerts());
        assert_eq!(b.assess().verdict, Verdict::Healthy);
    }

    #[test]
    fn lagging_party_fires_stall_then_clears() {
        let mut b = bank();
        // Everyone commits at t=0; then party 3 goes dark while the others
        // keep committing past the stall threshold.
        for p in 0..4 {
            commit(&mut b, p, 0, p as u64);
        }
        for step in 1..8u64 {
            for p in 0..3 {
                commit(&mut b, p, step, step * 400 + p as u64);
            }
        }
        let fires: Vec<&Alert> = b
            .alerts()
            .iter()
            .filter(|a| a.kind == AlertKind::Fire)
            .collect();
        assert_eq!(fires.len(), 1, "alerts: {:?}", b.alerts());
        assert_eq!(fires[0].detector, Detector::CommitStall);
        assert_eq!(fires[0].party, PartyId(3));
        assert!(b.is_active(Detector::CommitStall, PartyId(3)));
        assert_eq!(b.assess().verdict, Verdict::Degraded);
        assert_eq!(b.assess().stalled_parties, vec![PartyId(3)]);

        // The party recovers: its next commit clears the alert.
        commit(&mut b, 3, 8, 3_300);
        assert!(!b.is_active(Detector::CommitStall, PartyId(3)));
        let clears: Vec<&Alert> = b
            .alerts()
            .iter()
            .filter(|a| a.kind == AlertKind::Clear)
            .collect();
        assert_eq!(clears.len(), 1);
        assert_eq!(clears[0].detector, Detector::CommitStall);
        assert_eq!(b.assess().verdict, Verdict::Healthy);
    }

    #[test]
    fn majority_stall_is_a_stalled_verdict() {
        let mut b = bank();
        for p in 0..4 {
            commit(&mut b, p, 0, p as u64);
        }
        // Only party 0 keeps committing: 3 of 4 parties stall.
        for step in 1..8u64 {
            commit(&mut b, 0, step, step * 400);
        }
        assert_eq!(b.assess().verdict, Verdict::Stalled);
        assert_eq!(b.assess().stalled_parties.len(), 3);
    }

    #[test]
    fn round_skew_fires_and_clears() {
        let mut b = bank();
        let enter = |b: &mut DetectorBank, p: u32, r: u64, at: u64| {
            b.observe_event(&Stamped {
                at: Micros::from_millis(at),
                party: PartyId(p),
                event: Event::RoundEntered { round: Round(r) },
            });
        };
        for r in 1..=5u64 {
            for p in 0..3 {
                enter(&mut b, p, r, r * 100);
            }
            // Party 3 stays at round 1 after entering it once.
            if r == 1 {
                enter(&mut b, 3, 1, 100);
            }
        }
        assert!(b.is_active(Detector::RoundSkew, PartyId(3)));
        enter(&mut b, 3, 5, 600);
        assert!(!b.is_active(Detector::RoundSkew, PartyId(3)));
        let kinds: Vec<AlertKind> = b.alerts().iter().map(|a| a.kind).collect();
        assert_eq!(kinds, vec![AlertKind::Fire, AlertKind::Clear]);
    }

    #[test]
    fn pull_retry_storm_fires_and_drains() {
        let mut b = bank();
        for i in 0..6u64 {
            b.observe_event(&Stamped {
                at: Micros::from_millis(100 + i * 10),
                party: PartyId(2),
                event: Event::Rbc {
                    phase: RbcPhase::PullRetry,
                    round: Round(3),
                    source: PartyId(1),
                },
            });
        }
        assert!(b.is_active(Detector::PullRetryStorm, PartyId(2)));
        // Commits two seconds later expire the window and clear the storm.
        commit(&mut b, 0, 1, 2_500);
        commit(&mut b, 0, 2, 2_600);
        assert!(!b.is_active(Detector::PullRetryStorm, PartyId(2)));
    }

    #[test]
    fn evidence_spike_attributes_the_culprit() {
        let mut b = bank();
        b.observe_event(&Stamped {
            at: Micros::from_millis(500),
            party: PartyId(0),
            event: Event::EvidenceRecorded {
                kind: "equivocating_source",
                round: Round(2),
                culprit: PartyId(1),
            },
        });
        assert!(b.is_active(Detector::EvidenceSpike, PartyId(1)));
        let a = &b.alerts()[0];
        assert_eq!(a.party, PartyId(1));
        assert_eq!(a.detector, Detector::EvidenceSpike);
    }

    #[test]
    fn buffer_growth_uses_hi_lo_hysteresis() {
        let mut b = bank();
        b.observe_gauge(PartyId(1), counters::BUF_DAG_PENDING, 5_000);
        assert!(b.is_active(Detector::BufferGrowth, PartyId(1)));
        // Dropping below hi but above lo keeps the alert held.
        b.observe_gauge(PartyId(1), counters::BUF_DAG_PENDING, 2_000);
        assert!(b.is_active(Detector::BufferGrowth, PartyId(1)));
        b.observe_gauge(PartyId(1), counters::BUF_DAG_PENDING, 100);
        assert!(!b.is_active(Detector::BufferGrowth, PartyId(1)));
    }

    #[test]
    fn mempool_collapse_needs_the_rate() {
        let mut b = bank();
        b.observe_event(&Stamped {
            at: Micros::from_millis(100),
            party: PartyId(0),
            event: Event::RoundEntered { round: Round(1) },
        });
        b.observe_counter(PartyId(0), counters::MEMPOOL_REJECTED_FULL, 10);
        assert!(!b.is_active(Detector::MempoolCollapse, PartyId(0)));
        b.observe_counter(PartyId(0), counters::MEMPOOL_REJECTED_FULL, 60);
        assert!(b.is_active(Detector::MempoolCollapse, PartyId(0)));
    }

    #[test]
    fn wal_degradation_from_slow_fsyncs() {
        let mut b = bank();
        b.observe_event(&Stamped {
            at: Micros::from_millis(50),
            party: PartyId(0),
            event: Event::RoundEntered { round: Round(1) },
        });
        for _ in 0..3 {
            b.observe_histogram(PartyId(0), counters::WAL_FSYNC_MICROS, 80_000);
        }
        assert!(b.is_active(Detector::WalDegradation, PartyId(0)));
        // Fast fsyncs are ignored entirely.
        let fires_before = b.alerts().len();
        b.observe_histogram(PartyId(1), counters::WAL_FSYNC_MICROS, 200);
        assert_eq!(b.alerts().len(), fires_before);
    }

    #[test]
    fn rate_cap_suppresses_flapping() {
        let cfg = MonitorConfig {
            rate_cap: 2,
            evidence_window: Micros::from_millis(10),
            ..MonitorConfig::default()
        };
        let mut b = DetectorBank::new(cfg);
        b.register(PartyId(0));
        // Alternate evidence bursts with long silences so the detector
        // fires, clears, and fires again past the cap.
        for burst in 0..5u64 {
            b.observe_event(&Stamped {
                at: Micros::from_millis(burst * 1_000),
                party: PartyId(0),
                event: Event::EvidenceRecorded {
                    kind: "double_vote",
                    round: Round(burst),
                    culprit: PartyId(0),
                },
            });
            // A later commit sweeps the window and clears.
            commit(&mut b, 1, burst, burst * 1_000 + 500);
        }
        let fires = b
            .alerts()
            .iter()
            .filter(|a| a.kind == AlertKind::Fire && a.detector == Detector::EvidenceSpike)
            .count();
        assert_eq!(fires, 2, "alerts: {:?}", b.alerts());
        assert!(b.suppressed() > 0);
    }

    #[test]
    fn snapshots_accumulate_on_event_time() {
        let mut b = bank();
        for step in 0..10u64 {
            commit(&mut b, 0, step, step * 300);
        }
        assert!(b.snapshots().len() >= 2, "{}", b.snapshots().len());
        // Snapshot stamps are monotone.
        let stamps: Vec<u64> = b.snapshots().iter().map(|s| s.at.0).collect();
        let mut sorted = stamps.clone();
        sorted.sort_unstable();
        assert_eq!(stamps, sorted);
    }
}
