//! Detector thresholds and hysteresis tuning.

use clanbft_types::Micros;

/// All detector thresholds in one place.
///
/// The defaults are sized for the repo's evaluation tribes (seconds-scale
/// round trips, sub-second commit cadence): benign runs stay strictly below
/// every fire threshold, while the fault matrices (withholding, crashes,
/// equivocation) cross them within a couple of rounds. Offline replay
/// (`clanbft-inspect alerts`) uses the same defaults, so online and
/// post-mortem verdicts agree by construction.
#[derive(Clone, Debug)]
pub struct MonitorConfig {
    /// Commit-stall watchdog: fire when a party's newest commit lags the
    /// cluster's newest commit by more than this. Judged against the
    /// *other* parties' progress (not wall time), so a quiescent run-end
    /// never fires it.
    pub stall_after: Micros,
    /// Round-skew: fire when a party's entered round trails the cluster
    /// maximum by at least this many rounds.
    pub skew_rounds: u64,
    /// Buffer growth: fire when any `buf.*` occupancy gauge reaches this.
    pub buffer_hi: u64,
    /// Buffer growth clears when every `buf.*` gauge is back at or below
    /// this (hysteresis gap prevents flapping).
    pub buffer_lo: u64,
    /// Rolling window for the pull-retry storm detector.
    pub retry_window: Micros,
    /// Pull retries within the window that fire the storm detector.
    pub retry_fire: u64,
    /// The storm clears when the window count falls to or below this.
    pub retry_clear: u64,
    /// Rolling window for the evidence-rate detector.
    pub evidence_window: Micros,
    /// Evidence records against one culprit within the window that fire.
    pub evidence_fire: u64,
    /// Rolling window for the mempool-collapse detector.
    pub mempool_window: Micros,
    /// Capacity rejections within the window that fire the collapse
    /// detector.
    pub mempool_reject_fire: u64,
    /// A WAL fsync slower than this (host-measured, microseconds) counts as
    /// slow.
    pub wal_fsync_slow_us: u64,
    /// Slow fsyncs within the window that fire the degradation detector.
    pub wal_fsync_fire: u64,
    /// Rolling window for the WAL-degradation detector.
    pub wal_window: Micros,
    /// A checkpoint larger than this many bytes fires degradation
    /// immediately.
    pub checkpoint_bytes_hi: u64,
    /// Per-(detector, party) cap on fire transitions; beyond it further
    /// fire/clear pairs are counted as suppressed instead of emitted.
    pub rate_cap: u64,
    /// Cluster-health snapshot cadence (event-time driven).
    pub snapshot_every: Micros,
    /// Bound on the retained snapshot history.
    pub snapshot_cap: usize,
}

impl Default for MonitorConfig {
    fn default() -> MonitorConfig {
        MonitorConfig {
            stall_after: Micros::from_millis(1_500),
            skew_rounds: 3,
            buffer_hi: 4_096,
            buffer_lo: 512,
            retry_window: Micros::from_secs(1),
            retry_fire: 6,
            retry_clear: 1,
            evidence_window: Micros::from_secs(2),
            evidence_fire: 1,
            mempool_window: Micros::from_secs(1),
            mempool_reject_fire: 64,
            wal_fsync_slow_us: 50_000,
            wal_fsync_fire: 3,
            wal_window: Micros::from_secs(5),
            checkpoint_bytes_hi: 64 * 1024 * 1024,
            rate_cap: 16,
            snapshot_every: Micros::from_millis(500),
            snapshot_cap: 4_096,
        }
    }
}
