//! Building a runnable tribe: topology, keys, placement, fan-out degrees,
//! workload assignment and fault injection.

use clanbft_adversary::{AdversaryNode, Attack};
use clanbft_committee::ClanAssignment;
use clanbft_consensus::{ConsensusMsg, NodeConfig, SailfishNode};
use clanbft_crypto::{Authenticator, Registry, Scheme};
use clanbft_mempool::WorkloadSpec;
use clanbft_rbc::ClanTopology;
use clanbft_simnet::bandwidth::BandwidthModel;
use clanbft_simnet::cost::CostModel;
use clanbft_simnet::net::{Partition, SimConfig, Simulator};
use clanbft_simnet::regions::LatencyMatrix;
use clanbft_telemetry::Telemetry;
use clanbft_types::{ClanId, Micros, PartyId, TribeParams};
use std::sync::Arc;

/// Full specification of one simulated tribe.
#[derive(Clone)]
pub struct TribeSpec {
    /// Tribe size.
    pub n: usize,
    /// Clan structure: `None` = whole tribe (baseline Sailfish); one entry =
    /// single-clan; several = multi-clan partition.
    pub clans: Option<Vec<Vec<PartyId>>>,
    /// Synthetic transactions per proposal (paper x-axis). Ignored when
    /// `workload` is set.
    pub txs_per_proposal: u32,
    /// Transaction size in bytes (512 in the paper).
    pub tx_bytes: u32,
    /// Client workload every proposer's ingress runs. `None` keeps the
    /// historical synthetic model parameterised by `txs_per_proposal`.
    pub workload: Option<WorkloadSpec>,
    /// Garbage-collect DAG/RBC state this many rounds behind the commit
    /// frontier (`None` = keep everything, as exactly-once audits need).
    pub gc_depth: Option<u64>,
    /// Stop proposing after this round.
    pub max_round: Option<u64>,
    /// Round timeout.
    pub timeout: Micros,
    /// Pull-retry deadline: how long an unanswered payload/meta pull waits
    /// before rotating to the next peer (see the RBC pull sub-protocol).
    pub pull_retry: Micros,
    /// RNG seed (keys, schedule, jitter).
    pub seed: u64,
    /// Host CPU cost model.
    pub cost: CostModel,
    /// Uplink bandwidth model.
    pub bandwidth: BandwidthModel,
    /// Crash faults: `(party, time)`.
    pub crashes: Vec<(PartyId, Micros)>,
    /// Restart schedule: `(party, time)`. Every restarted party must also
    /// appear in `crashes` (with an earlier time) and requires
    /// `storage_root` — a node cannot rejoin without its WAL.
    pub restarts: Vec<(PartyId, Micros)>,
    /// Root directory for per-node durable storage (`node-<i>/` under it).
    /// `None` runs every node memory-only.
    pub storage_root: Option<std::path::PathBuf>,
    /// Whether WAL appends fsync (logical-recovery tests may turn this off).
    pub fsync: bool,
    /// Checkpoint every this many committed leader rounds.
    pub checkpoint_interval: u64,
    /// Post-restart state-transfer window (rounds behind the local frontier).
    pub catchup_rounds: u64,
    /// Rounds per epoch for clan rotation (`None` = never rotate).
    pub epoch_length: Option<u64>,
    /// Liveness slack before a clan member is rotated out (see
    /// [`NodeConfig::rotation_miss_k`]).
    pub rotation_miss_k: u64,
    /// Byzantine faults: each listed party runs the honest node wrapped in
    /// the given [`Attack`] behaviour. Keep the count within `f` for the
    /// tribe (and within `f_c` per clan) or agreement guarantees lapse.
    pub byzantine: Vec<(PartyId, Attack)>,
    /// Temporary link cuts.
    pub partitions: Vec<Partition>,
    /// Global stabilization time (0 = synchronous from the start).
    pub gst: Micros,
    /// Maximum adversarial extra delay per message before GST.
    pub pre_gst_extra_max: Micros,
    /// Verify signature bytes for real (tests) or charge cost only (scale).
    pub verify_sigs: bool,
    /// Enable the execution layer.
    pub execute: bool,
    /// Place all nodes in one region (isolates CPU/bandwidth effects).
    pub single_region: bool,
    /// Telemetry sink shared by the network and every node (disabled by
    /// default; see `clanbft_telemetry`).
    pub telemetry: Telemetry,
    /// Optional online health monitor. When set, every node's telemetry is
    /// teed into a per-party probe (so gauge/counter/histogram samples
    /// arrive attributed) and the simulator's handle into an event-only
    /// observer — the detectors then watch the run live.
    pub monitor: Option<clanbft_monitor::HealthMonitor>,
}

impl TribeSpec {
    /// Evaluation defaults for a tribe of `n`.
    pub fn new(n: usize) -> TribeSpec {
        TribeSpec {
            n,
            clans: None,
            txs_per_proposal: 250,
            tx_bytes: 512,
            workload: None,
            gc_depth: Some(16),
            max_round: Some(10),
            timeout: Micros::from_secs(5),
            pull_retry: Micros::from_millis(500),
            seed: 7,
            cost: CostModel::default(),
            bandwidth: BandwidthModel::default(),
            crashes: Vec::new(),
            restarts: Vec::new(),
            storage_root: None,
            fsync: true,
            checkpoint_interval: 8,
            catchup_rounds: 8,
            epoch_length: None,
            rotation_miss_k: 4,
            byzantine: Vec::new(),
            partitions: Vec::new(),
            gst: Micros::ZERO,
            pre_gst_extra_max: Micros::ZERO,
            verify_sigs: false,
            execute: false,
            single_region: false,
            telemetry: Telemetry::null(),
            monitor: None,
        }
    }
}

/// The node type the tribe harness runs: a Sailfish node behind the
/// adversary interposer (a no-op for honest parties).
pub type TribeNode = AdversaryNode<ConsensusMsg, SailfishNode>;

/// A built, ready-to-run tribe.
pub struct BuiltTribe {
    /// The simulator holding every node.
    pub sim: Simulator<ConsensusMsg, TribeNode>,
    /// The clan topology used.
    pub topology: Arc<ClanTopology>,
    /// Parties that neither crash nor misbehave (metrics and agreement
    /// assertions are taken over these).
    pub honest: Vec<PartyId>,
}

/// Elects the paper's evaluation clans (region-balanced) and assembles the
/// topology for `spec`.
fn make_topology(spec: &TribeSpec, latency: &LatencyMatrix) -> Arc<ClanTopology> {
    let tribe = TribeParams::new(spec.n);
    let topo = match &spec.clans {
        None => ClanTopology::whole_tribe(tribe),
        Some(clans) if clans.len() == 1 => ClanTopology::single_clan(tribe, clans[0].clone()),
        Some(clans) => ClanTopology::multi_clan(tribe, clans.clone()),
    };
    let _ = latency;
    Arc::new(topo)
}

/// Region-balanced single-clan election matching the paper's setup.
pub fn elect_clan(n: usize, clan_size: usize, seed: u64) -> Vec<PartyId> {
    let latency = LatencyMatrix::evenly_distributed(n);
    let assignment =
        ClanAssignment::elect_region_balanced(n, clan_size, &latency.region_indices(), seed);
    assignment.members(ClanId(0)).to_vec()
}

/// Region-balanced multi-clan partition matching the paper's setup.
pub fn partition_clans(n: usize, q: usize, seed: u64) -> Vec<Vec<PartyId>> {
    let latency = LatencyMatrix::evenly_distributed(n);
    let assignment =
        ClanAssignment::partition_region_balanced(n, q, &latency.region_indices(), seed);
    (0..assignment.clan_count())
        .map(|c| assignment.members(ClanId(c as u16)).to_vec())
        .collect()
}

/// Builds the simulator for `spec`.
pub fn build_tribe(spec: &TribeSpec) -> BuiltTribe {
    let n = spec.n;
    let latency = if spec.single_region {
        LatencyMatrix::single_region(n)
    } else {
        LatencyMatrix::evenly_distributed(n)
    };
    let topology = make_topology(spec, &latency);

    // Bulk fan-out degree: how many peers a node streams blocks to per
    // round. Block proposers stream to their clan; everyone else only moves
    // small control messages, for which the degree barely matters — they
    // get the full-mesh degree as the conservative choice.
    let bulk_fanout: Vec<usize> = (0..n as u32)
        .map(|p| {
            let p = PartyId(p);
            let clan = topology.clan_for_sender(p);
            if clan.contains(p) {
                (clan.len() - 1).max(1)
            } else {
                (n - 1).max(1)
            }
        })
        .collect();

    let mut sim_cfg = SimConfig::benign(n, spec.seed);
    sim_cfg.latency = latency;
    sim_cfg.bandwidth = spec.bandwidth;
    sim_cfg.cost = spec.cost;
    sim_cfg.bulk_fanout = bulk_fanout;
    for &(p, at) in &spec.crashes {
        sim_cfg.crash_at[p.idx()] = Some(at);
    }
    assert!(
        spec.restarts.is_empty() || spec.storage_root.is_some(),
        "restarts require storage_root: a node cannot rejoin without its WAL"
    );
    for &(p, at) in &spec.restarts {
        sim_cfg.restart_at[p.idx()] = Some(at);
    }
    sim_cfg.partitions = spec.partitions.clone();
    sim_cfg.gst = spec.gst;
    sim_cfg.pre_gst_extra_max = spec.pre_gst_extra_max;
    sim_cfg.telemetry = match &spec.monitor {
        Some(m) => {
            m.expect_parties(n as u32);
            spec.telemetry.tee_with(m.observer())
        }
        None => spec.telemetry.clone(),
    };

    let (registry, keypairs) = Registry::generate(Scheme::Keyed, n, spec.seed);
    let nodes: Vec<TribeNode> = keypairs
        .into_iter()
        .enumerate()
        .map(|(i, kp)| {
            let me = PartyId(i as u32);
            let auth = Arc::new(Authenticator::new(i, kp, Arc::clone(&registry)));
            let mut cfg = NodeConfig::new(me, Arc::clone(&topology));
            cfg.schedule_seed = spec.seed;
            cfg.cost = spec.cost;
            cfg.timeout = spec.timeout;
            cfg.pull_retry = spec.pull_retry;
            cfg.max_round = spec.max_round;
            cfg.txs_per_proposal = spec.txs_per_proposal;
            cfg.tx_bytes = spec.tx_bytes;
            cfg.workload = spec.workload;
            cfg.gc_depth = spec.gc_depth;
            // Only parties inside their own dissemination clan can validate
            // and therefore propose transactions (paper §5): under
            // single-clan that is the designated clan; under multi-clan and
            // the baseline it is everybody.
            cfg.is_block_proposer = topology.clan_for_sender(me).contains(me);
            cfg.verify_sigs = spec.verify_sigs;
            cfg.execute = spec.execute;
            cfg.telemetry = match &spec.monitor {
                Some(m) => spec.telemetry.tee_with(m.probe(me)),
                None => spec.telemetry.clone(),
            };
            if let Some(root) = &spec.storage_root {
                cfg.storage_dir = Some(root.join(format!("node-{i}")));
            }
            cfg.fsync = spec.fsync;
            cfg.checkpoint_interval = spec.checkpoint_interval;
            cfg.catchup_rounds = spec.catchup_rounds;
            cfg.epoch_length = spec.epoch_length;
            cfg.rotation_miss_k = spec.rotation_miss_k;
            let inner = SailfishNode::new(cfg, auth);
            match spec.byzantine.iter().find(|(p, _)| *p == me) {
                Some((_, attack)) => AdversaryNode::byzantine(inner, attack.instantiate()),
                None => AdversaryNode::honest(inner),
            }
        })
        .collect();

    let honest = (0..n as u32)
        .map(PartyId)
        .filter(|p| !spec.crashes.iter().any(|(c, _)| c == p))
        .filter(|p| !spec.byzantine.iter().any(|(b, _)| b == p))
        .collect();

    BuiltTribe {
        sim: Simulator::new(sim_cfg, nodes),
        topology,
        honest,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_everyone_proposes() {
        let spec = TribeSpec::new(7);
        let built = build_tribe(&spec);
        assert_eq!(built.topology.clan_count(), 1);
        assert_eq!(built.topology.clan(0).len(), 7);
        assert_eq!(built.honest.len(), 7);
    }

    #[test]
    fn single_clan_restricts_proposers() {
        let clan = elect_clan(10, 5, 3);
        assert_eq!(clan.len(), 5);
        let mut spec = TribeSpec::new(10);
        spec.clans = Some(vec![clan.clone()]);
        let built = build_tribe(&spec);
        // Clan members stream blocks to 4 peers; outsiders keep full mesh.
        let fanout = &built.sim.config().bulk_fanout;
        for p in 0..10u32 {
            let expected = if clan.contains(&PartyId(p)) { 4 } else { 9 };
            assert_eq!(fanout[p as usize], expected, "party {p}");
        }
    }

    #[test]
    fn multi_clan_partition_covers() {
        let clans = partition_clans(12, 3, 9);
        assert_eq!(clans.len(), 3);
        let total: usize = clans.iter().map(Vec::len).sum();
        assert_eq!(total, 12);
        let mut spec = TribeSpec::new(12);
        spec.clans = Some(clans);
        let built = build_tribe(&spec);
        assert_eq!(built.topology.clan_count(), 3);
        // Everyone is in some clan, so everyone streams to its clan only.
        for k in built.sim.config().bulk_fanout.iter() {
            assert_eq!(*k, 3);
        }
    }

    #[test]
    fn clan_election_is_region_balanced() {
        let clan = elect_clan(50, 30, 1);
        let mut per_region = [0usize; 5];
        for p in &clan {
            per_region[p.idx() % 5] += 1;
        }
        assert_eq!(per_region, [6, 6, 6, 6, 6]);
    }

    #[test]
    fn crashes_excluded_from_honest() {
        let mut spec = TribeSpec::new(6);
        spec.crashes = vec![(PartyId(2), Micros::ZERO)];
        let built = build_tribe(&spec);
        assert_eq!(built.honest.len(), 5);
        assert!(!built.honest.contains(&PartyId(2)));
    }
}
