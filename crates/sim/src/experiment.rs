//! High-level experiment presets: one call runs one data point of the
//! paper's evaluation.

use crate::metrics::{collect_metrics, RunMetrics};
use crate::tribe::{build_tribe, elect_clan, partition_clans, TribeSpec};
use clanbft_types::Micros;

/// Which protocol a data point runs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Proto {
    /// Baseline Sailfish.
    Sailfish,
    /// Single-clan Sailfish with the given clan size.
    SingleClan {
        /// Elected clan size (paper: 32/60/80 for n = 50/100/150).
        clan_size: usize,
    },
    /// Multi-clan Sailfish with the given clan count.
    MultiClan {
        /// Number of disjoint clans (paper: 2 at n = 150).
        clans: usize,
    },
}

impl Proto {
    /// Short display label matching the paper's legends.
    pub fn label(&self) -> String {
        match self {
            Proto::Sailfish => "Sailfish".to_string(),
            Proto::SingleClan { clan_size } => format!("Single-clan Sailfish (nc={clan_size})"),
            Proto::MultiClan { clans } => format!("Multi-clan Sailfish (q={clans})"),
        }
    }
}

/// One experiment data point.
#[derive(Clone, Debug)]
pub struct ExperimentSpec {
    /// Protocol under test.
    pub proto: Proto,
    /// Tribe size.
    pub n: usize,
    /// Transactions per proposal (paper x-axis parameter). Ignored when
    /// `workload` is set.
    pub txs_per_proposal: u32,
    /// Client workload for every proposer (`None` = historical synthetic
    /// model at `txs_per_proposal`).
    pub workload: Option<clanbft_mempool::WorkloadSpec>,
    /// Rounds to run (measured window excludes warm-up/cool-down).
    pub rounds: u64,
    /// Warm-up rounds excluded from measurement.
    pub warmup_rounds: u64,
    /// Cool-down rounds excluded at the tail.
    pub cooldown_rounds: u64,
    /// RNG seed.
    pub seed: u64,
    /// Per-node durable storage root (WAL + checkpoints under
    /// `node-<i>/`). `None` runs memory-only — the historical default; the
    /// durability bench point sets it to measure fsync cost.
    pub storage_root: Option<std::path::PathBuf>,
}

impl ExperimentSpec {
    /// A data point with evaluation defaults.
    pub fn new(proto: Proto, n: usize, txs_per_proposal: u32) -> ExperimentSpec {
        ExperimentSpec {
            proto,
            n,
            txs_per_proposal,
            workload: None,
            rounds: 14,
            warmup_rounds: 3,
            cooldown_rounds: 3,
            seed: 11,
            storage_root: None,
        }
    }

    /// The clan sizes the paper uses at failure probability 1e-6 for its
    /// evaluated system sizes; computed sizes for anything else.
    pub fn paper_clan_size(n: usize) -> usize {
        match n {
            50 => 32,
            100 => 60,
            150 => 80,
            _ => {
                let f = ((n as u64) - 1) / 3;
                clanbft_committee::sizing::min_clan_size_tail(
                    n as u64,
                    f,
                    1e-6,
                    clanbft_committee::hypergeom::Tail::StrictDishonestMajority,
                )
                .expect("solvable for f < n/3") as usize
            }
        }
    }

    /// Builds the underlying tribe spec.
    pub fn tribe_spec(&self) -> TribeSpec {
        let mut spec = TribeSpec::new(self.n);
        spec.txs_per_proposal = self.txs_per_proposal;
        spec.workload = self.workload;
        spec.max_round = Some(self.rounds);
        spec.seed = self.seed;
        spec.clans = match &self.proto {
            Proto::Sailfish => None,
            Proto::SingleClan { clan_size } => {
                Some(vec![elect_clan(self.n, *clan_size, self.seed)])
            }
            Proto::MultiClan { clans } => Some(partition_clans(self.n, *clans, self.seed)),
        };
        spec.storage_root = self.storage_root.clone();
        spec
    }

    /// Runs the data point and reports metrics.
    pub fn run(&self) -> RunMetrics {
        self.run_with(clanbft_telemetry::Telemetry::null())
    }

    /// Runs the data point with a telemetry sink attached to the network and
    /// every node, and reports metrics.
    pub fn run_with(&self, telemetry: clanbft_telemetry::Telemetry) -> RunMetrics {
        let mut spec = self.tribe_spec();
        spec.telemetry = telemetry;
        let mut built = build_tribe(&spec);
        // Generous simulated-time bound; benign runs drain far earlier
        // because proposing stops at `rounds`.
        let wall_start = std::time::Instant::now();
        built.sim.run_until(Micros::from_secs(3_000));
        let wall = wall_start.elapsed();
        let sim_span = built.sim.stats().last_event_at;
        let mut m = collect_metrics(
            &built.sim,
            &built.honest,
            self.warmup_rounds,
            self.rounds.saturating_sub(self.cooldown_rounds),
        );
        m.attach_host_costs(wall, sim_span);
        m
    }

    /// Runs the data point with a fresh in-memory recorder attached and
    /// returns it alongside the metrics, with the WAL/checkpoint durability
    /// columns filled in from the recorder (meaningful when `storage_root`
    /// is set; zero otherwise).
    pub fn run_recorded(&self) -> (RunMetrics, std::sync::Arc<clanbft_telemetry::MemRecorder>) {
        let (telemetry, rec) = clanbft_telemetry::Telemetry::mem();
        let mut m = self.run_with(telemetry);
        m.attach_durability(&rec);
        (m, rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_clan_sizes() {
        assert_eq!(ExperimentSpec::paper_clan_size(50), 32);
        assert_eq!(ExperimentSpec::paper_clan_size(100), 60);
        assert_eq!(ExperimentSpec::paper_clan_size(150), 80);
        // A non-tabulated size solves through the committee machinery.
        let s = ExperimentSpec::paper_clan_size(60);
        assert!(s > 20 && s < 60);
    }

    #[test]
    fn labels() {
        assert_eq!(Proto::Sailfish.label(), "Sailfish");
        assert!(Proto::SingleClan { clan_size: 80 }.label().contains("80"));
        assert!(Proto::MultiClan { clans: 2 }.label().contains("q=2"));
    }

    #[test]
    fn small_experiment_produces_throughput() {
        let mut spec = ExperimentSpec::new(Proto::Sailfish, 7, 100);
        spec.rounds = 8;
        spec.warmup_rounds = 1;
        spec.cooldown_rounds = 2;
        let m = spec.run();
        assert!(m.committed_txs > 0, "no transactions committed");
        assert!(m.throughput_tps > 0.0);
        assert!(m.avg_latency > Micros::ZERO);
        assert!(m.p99_latency >= m.avg_latency);
    }

    #[test]
    fn single_clan_small_experiment() {
        let mut spec = ExperimentSpec::new(Proto::SingleClan { clan_size: 4 }, 8, 100);
        spec.rounds = 8;
        spec.warmup_rounds = 1;
        spec.cooldown_rounds = 2;
        let m = spec.run();
        assert!(m.committed_txs > 0);
    }
}
