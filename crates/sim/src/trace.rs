//! Merged multi-party trace export.
//!
//! A simulated tribe already shares one [`MemRecorder`] across every node
//! and the network, and the simulator's discrete-event clock is the global
//! time base, so the recorder's event log *is* the merged multi-party
//! trace. This module prepends the run metadata line the `clanbft-inspect`
//! toolchain needs to judge the events — tribe size (for quorums and the
//! `Echoed(k/n)` stage), seed, and the attack labels active in the run —
//! and writes the whole thing to a file.
//!
//! The meta line is itself NDJSON: `{"meta":"run","n":8,"seed":42,...}`.
//! Parsers that don't care (or older ones) can skip any line carrying a
//! `meta` key.

use crate::tribe::TribeSpec;
use clanbft_telemetry::{JsonObj, MemRecorder};

/// Renders the run-metadata line for `spec` (no trailing newline).
pub fn meta_line(spec: &TribeSpec) -> String {
    let mut obj = JsonObj::new()
        .str("meta", "run")
        .u64("n", spec.n as u64)
        .u64("seed", spec.seed)
        .u64("clans", spec.clans.as_ref().map_or(0, Vec::len) as u64);
    if let Some(max) = spec.max_round {
        obj = obj.u64("max_round", max);
    }
    let attacks: Vec<String> = spec
        .byzantine
        .iter()
        .map(|(p, a)| format!("{}:{}", p.0, a.name()))
        .collect();
    if !attacks.is_empty() {
        obj = obj.str("attacks", &attacks.join(","));
    }
    obj.finish()
}

/// The full merged trace: meta line first, then every recorded event in
/// deterministic emission order, one NDJSON line each.
pub fn export_trace(spec: &TribeSpec, recorder: &MemRecorder) -> String {
    let mut out = meta_line(spec);
    out.push('\n');
    out.push_str(&recorder.to_ndjson());
    out
}

/// Writes the merged trace to `path`.
pub fn write_trace(spec: &TribeSpec, recorder: &MemRecorder, path: &str) -> std::io::Result<()> {
    std::fs::write(path, export_trace(spec, recorder))
}

#[cfg(test)]
mod tests {
    use super::*;
    use clanbft_adversary::Attack;
    use clanbft_types::PartyId;

    #[test]
    fn meta_line_carries_run_identity() {
        let mut spec = TribeSpec::new(7);
        spec.seed = 42;
        spec.clans = Some(vec![vec![PartyId(0), PartyId(1), PartyId(2)]]);
        spec.byzantine = vec![(
            PartyId(3),
            Attack::Withhold {
                victims: vec![PartyId(0)],
            },
        )];
        let line = meta_line(&spec);
        assert!(line.starts_with(r#"{"meta":"run","n":7,"seed":42,"clans":1"#));
        assert!(line.contains(r#""attacks":"3:withhold""#));
    }

    #[test]
    fn export_prepends_meta_to_the_event_stream() {
        let (tel, rec) = clanbft_telemetry::Telemetry::mem();
        tel.event(
            clanbft_types::Micros(3),
            PartyId(1),
            clanbft_telemetry::Event::RoundEntered {
                round: clanbft_types::Round(1),
            },
        );
        let spec = TribeSpec::new(4);
        let trace = export_trace(&spec, &rec);
        let mut lines = trace.lines();
        assert!(lines.next().expect("meta line").contains(r#""meta":"run""#));
        assert!(lines.next().expect("event line").contains("round_entered"));
        assert_eq!(lines.next(), None);
    }
}
