//! Experiment harness for the clanbft workspace.
//!
//! Glues the layers together the way the paper's evaluation does: a tribe of
//! [`SailfishNode`]s placed across the five GCP regions on the discrete-event
//! simulator, clan election via the committee machinery, the 512-byte
//! synthetic workload, and throughput/latency metrics defined exactly as in
//! §7 (throughput = committed tx/s; latency = creation → commit at *all*
//! non-faulty nodes).
//!
//! [`SailfishNode`]: clanbft_consensus::SailfishNode

pub mod experiment;
pub mod metrics;
pub mod trace;
pub mod tribe;

pub use experiment::{ExperimentSpec, Proto};
pub use metrics::{collect_metrics, RunMetrics};
pub use trace::{export_trace, meta_line, write_trace};
pub use tribe::{build_tribe, BuiltTribe, TribeNode, TribeSpec};
