//! Throughput and latency measurement, defined as in the paper's §7:
//!
//! * **Throughput** — committed transactions per second, counted once a
//!   transaction's vertex has been committed by *all* non-faulty nodes.
//! * **Latency** — average time from a transaction's creation to its commit
//!   by all non-faulty nodes.
//!
//! Measurement excludes a warm-up and cool-down window of rounds so that
//! start-up transients and the truncated tail do not distort steady state.

use crate::tribe::TribeNode;
use clanbft_consensus::ConsensusMsg;
use clanbft_simnet::net::Simulator;
use clanbft_types::{Micros, PartyId, Round, VertexRef};
use std::collections::HashMap;

/// Measured outcome of one run.
#[derive(Clone, Debug)]
pub struct RunMetrics {
    /// Transactions committed by every honest node in the window.
    pub committed_txs: u64,
    /// Committed transactions per second.
    pub throughput_tps: f64,
    /// Mean creation→commit-everywhere latency.
    pub avg_latency: Micros,
    /// Median per-batch latency.
    pub p50_latency: Micros,
    /// 99th percentile of per-batch latency.
    pub p99_latency: Micros,
    /// Span of the measurement window.
    pub window: Micros,
    /// Highest round committed by every honest node.
    pub committed_rounds: u64,
    /// Total bytes placed on the simulated wire (whole run, all nodes).
    pub total_bytes: u64,
    /// Non-empty proposals inside the window (for the batch distribution).
    pub proposals: u64,
    /// Median transactions per proposal (the dynamic sizer's choices).
    pub batch_p50: u64,
    /// 99th-percentile transactions per proposal.
    pub batch_p99: u64,
    /// Largest proposal in the window, in transactions.
    pub batch_max: u64,
    /// Events the simulator popped over the whole run (deliveries +
    /// timers). The numerator of `sim_events_per_sec`.
    pub sim_events: u64,
    /// Host wall-clock microseconds the event loop took (ROADMAP item 2's
    /// scaling cost; zero until [`RunMetrics::attach_host_costs`] runs).
    pub wall_us: u64,
    /// Simulator events processed per host wall second.
    pub sim_events_per_sec: f64,
    /// Host wall microseconds per simulated second — how much slower (or
    /// faster) than real time the simulation runs.
    pub wall_us_per_sim_sec: f64,
    /// Median WAL fsync latency, host-measured microseconds (zero in
    /// memory-only runs; filled by [`RunMetrics::attach_durability`]).
    pub wal_fsync_p50_us: u64,
    /// 99th-percentile WAL fsync latency, host-measured microseconds.
    pub wal_fsync_p99_us: u64,
    /// WAL bytes written per committed vertex, framing included — the
    /// durability tax each commit pays.
    pub wal_bytes_per_commit: u64,
}

impl RunMetrics {
    /// One NDJSON line, suitable for appending to a results file.
    pub fn to_json(&self) -> String {
        clanbft_telemetry::JsonObj::new()
            .u64("committed_txs", self.committed_txs)
            .f64("throughput_tps", self.throughput_tps)
            .u64("avg_latency_us", self.avg_latency.0)
            .u64("p50_latency_us", self.p50_latency.0)
            .u64("p99_latency_us", self.p99_latency.0)
            .u64("window_us", self.window.0)
            .u64("committed_rounds", self.committed_rounds)
            .u64("total_bytes", self.total_bytes)
            .u64("proposals", self.proposals)
            .u64("batch_p50", self.batch_p50)
            .u64("batch_p99", self.batch_p99)
            .u64("batch_max", self.batch_max)
            .u64("sim_events", self.sim_events)
            .u64("wall_us", self.wall_us)
            .f64("sim_events_per_sec", self.sim_events_per_sec)
            .f64("wall_us_per_sim_sec", self.wall_us_per_sim_sec)
            .u64("wal_fsync_p50_us", self.wal_fsync_p50_us)
            .u64("wal_fsync_p99_us", self.wal_fsync_p99_us)
            .u64("wal_bytes_per_commit", self.wal_bytes_per_commit)
            .finish()
    }

    /// Fills the host-side rate metrics from the measured wall-clock time of
    /// the event loop and the simulated span it covered (the last event's
    /// timestamp — `run_until` clamps `now` to its deadline, which would
    /// understate the rate for runs that drain early).
    pub fn attach_host_costs(&mut self, wall: std::time::Duration, sim_span: Micros) {
        self.wall_us = wall.as_micros() as u64;
        let wall_secs = wall.as_secs_f64();
        self.sim_events_per_sec = if wall_secs > 0.0 {
            self.sim_events as f64 / wall_secs
        } else {
            0.0
        };
        self.wall_us_per_sim_sec = if sim_span > Micros::ZERO {
            self.wall_us as f64 / sim_span.as_secs_f64()
        } else {
            0.0
        };
    }

    /// Fills the WAL/checkpoint durability columns from a recorder that
    /// observed the run: the fsync-latency histogram readout and the
    /// bytes-per-commit ratio (WAL bytes over committed vertices, both from
    /// counters). All three stay zero for memory-only runs.
    pub fn attach_durability(&mut self, rec: &clanbft_telemetry::MemRecorder) {
        use clanbft_telemetry::counters;
        if let Some(h) = rec.histogram(counters::WAL_FSYNC_MICROS) {
            let (p50, _p90, p99, _max) = h.readout();
            self.wal_fsync_p50_us = p50;
            self.wal_fsync_p99_us = p99;
        }
        if let Some(per_commit) = rec
            .counter(counters::WAL_BYTES)
            .checked_div(rec.counter(counters::COMMIT_VERTICES))
        {
            self.wal_bytes_per_commit = per_commit;
        }
    }
}

/// Collects metrics over the honest nodes after a run.
///
/// `warmup_rounds` vertices are skipped at the front; vertices above
/// `last_round` (usually `max_round − cooldown`) are skipped at the back.
pub fn collect_metrics(
    sim: &Simulator<ConsensusMsg, TribeNode>,
    honest: &[PartyId],
    warmup_rounds: u64,
    last_round: u64,
) -> RunMetrics {
    let _prof = clanbft_profiler::scope("sim.collect_metrics");
    assert!(!honest.is_empty(), "need at least one honest node");

    // Commit-everywhere time per vertex: max over honest nodes, only for
    // vertices all of them committed.
    let mut commit_times: HashMap<VertexRef, (usize, Micros)> = HashMap::new();
    for &p in honest {
        for c in &sim.node(p).committed_log {
            let e = commit_times.entry(c.vertex).or_insert((0, Micros::ZERO));
            e.0 += 1;
            e.1 = e.1.max(c.committed_at);
        }
    }
    let all_committed: HashMap<VertexRef, Micros> = commit_times
        .into_iter()
        .filter(|(_, (count, _))| *count == honest.len())
        .map(|(v, (_, t))| (v, t))
        .collect();

    let committed_rounds = all_committed.keys().map(|v| v.round.0).max().unwrap_or(0);

    // Batch latency: creation time lives with the proposer.
    let in_window = |r: Round| r.0 >= warmup_rounds && r.0 <= last_round;
    let mut txs: u64 = 0;
    let mut weighted_latency: u128 = 0;
    let mut latencies: Vec<(Micros, u64)> = Vec::new();
    let mut t_min = Micros(u64::MAX);
    let mut t_max = Micros::ZERO;
    // Batch-size distribution: transactions per proposal (one proposal =
    // one vertex), over the same committed, in-window population.
    let mut per_proposal: HashMap<VertexRef, u64> = HashMap::new();
    for &p in honest {
        for b in &sim.node(p).proposed_batches {
            if !in_window(b.vertex.round) {
                continue;
            }
            let Some(&commit_all) = all_committed.get(&b.vertex) else {
                continue;
            };
            let latency = commit_all.saturating_sub(b.created_at);
            txs += b.count as u64;
            weighted_latency += latency.0 as u128 * b.count as u128;
            latencies.push((latency, b.count as u64));
            *per_proposal.entry(b.vertex).or_insert(0) += b.count as u64;
            t_min = t_min.min(commit_all);
            t_max = t_max.max(commit_all);
        }
    }
    let mut batch_sizes: Vec<(Micros, u64)> =
        per_proposal.values().map(|&c| (Micros(c), 1)).collect();
    let proposals = batch_sizes.len() as u64;
    let batch_p50 = percentile(&mut batch_sizes, 0.50).0;
    let batch_p99 = percentile(&mut batch_sizes, 0.99).0;
    let batch_max = batch_sizes.last().map(|(c, _)| c.0).unwrap_or(0);

    let window = if txs > 0 {
        t_max.saturating_sub(t_min)
    } else {
        Micros::ZERO
    };
    let throughput_tps = if window > Micros::ZERO {
        txs as f64 / window.as_secs_f64()
    } else {
        0.0
    };
    let avg_latency = if txs > 0 {
        Micros((weighted_latency / txs as u128) as u64)
    } else {
        Micros::ZERO
    };
    let p50_latency = percentile(&mut latencies, 0.50);
    let p99_latency = percentile(&mut latencies, 0.99);

    RunMetrics {
        committed_txs: txs,
        throughput_tps,
        avg_latency,
        p50_latency,
        p99_latency,
        window,
        committed_rounds,
        total_bytes: sim.stats().total_bytes(),
        proposals,
        batch_p50,
        batch_p99,
        batch_max,
        sim_events: sim.stats().handled_events,
        wall_us: 0,
        sim_events_per_sec: 0.0,
        wall_us_per_sim_sec: 0.0,
        wal_fsync_p50_us: 0,
        wal_fsync_p99_us: 0,
        wal_bytes_per_commit: 0,
    }
}

/// Weighted percentile over `(latency, weight)` samples.
fn percentile(samples: &mut [(Micros, u64)], q: f64) -> Micros {
    if samples.is_empty() {
        return Micros::ZERO;
    }
    samples.sort_by_key(|(l, _)| *l);
    let total: u64 = samples.iter().map(|(_, w)| *w).sum();
    if total == 0 {
        return Micros::ZERO;
    }
    // Rank of the sample holding quantile `q`, 1-based. The lower clamp
    // makes q = 0.0 return the minimum rather than tripping `acc >= 0` on
    // the first bucket regardless of its weight.
    let target = ((total as f64 * q).ceil() as u64).clamp(1, total);
    let mut acc = 0u64;
    for (l, w) in samples.iter() {
        acc += w;
        if acc >= target {
            return *l;
        }
    }
    samples.last().expect("nonempty").0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_weighted() {
        let mut s = vec![(Micros(100), 98), (Micros(200), 1), (Micros(300), 1)];
        assert_eq!(percentile(&mut s, 0.5), Micros(100));
        assert_eq!(percentile(&mut s, 0.99), Micros(200));
        assert_eq!(percentile(&mut s, 1.0), Micros(300));
        assert_eq!(percentile(&mut [], 0.5), Micros::ZERO);
    }

    #[test]
    fn percentile_q_zero_is_the_minimum() {
        let mut s = vec![(Micros(300), 5), (Micros(100), 5), (Micros(200), 5)];
        assert_eq!(percentile(&mut s, 0.0), Micros(100));
        // A zero-weight sample never carries a quantile, even at q = 0.
        let mut z = vec![(Micros(50), 0), (Micros(80), 3)];
        assert_eq!(percentile(&mut z, 0.0), Micros(80));
        // All-zero weights degrade gracefully instead of dividing rank 0.
        let mut all_zero = vec![(Micros(10), 0)];
        assert_eq!(percentile(&mut all_zero, 0.5), Micros::ZERO);
    }

    #[test]
    fn run_metrics_json_line() {
        let m = RunMetrics {
            committed_txs: 10,
            throughput_tps: 2.5,
            avg_latency: Micros(400),
            p50_latency: Micros(350),
            p99_latency: Micros(900),
            window: Micros(4_000_000),
            committed_rounds: 8,
            total_bytes: 1234,
            proposals: 4,
            batch_p50: 3,
            batch_p99: 4,
            batch_max: 4,
            sim_events: 5000,
            wall_us: 0,
            sim_events_per_sec: 0.0,
            wall_us_per_sim_sec: 0.0,
            wal_fsync_p50_us: 0,
            wal_fsync_p99_us: 0,
            wal_bytes_per_commit: 0,
        };
        let mut m = m;
        m.attach_host_costs(std::time::Duration::from_millis(250), Micros::from_secs(2));
        let line = m.to_json();
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"committed_txs\":10"));
        assert!(line.contains("\"p50_latency_us\":350"));
        assert!(line.contains("\"p99_latency_us\":900"));
        assert!(line.contains("\"throughput_tps\":2.5"));
        assert!(line.contains("\"proposals\":4"));
        assert!(line.contains("\"batch_p50\":3"));
        assert!(line.contains("\"batch_max\":4"));
        assert!(line.contains("\"sim_events\":5000"));
        assert!(line.contains("\"wall_us\":250000"));
        // 5000 events / 0.25 s and 250 ms / 2 simulated seconds.
        assert!(line.contains("\"sim_events_per_sec\":20000"));
        assert!(line.contains("\"wall_us_per_sim_sec\":125000"));
        assert!(line.contains("\"wal_fsync_p50_us\":0"));
        assert!(line.contains("\"wal_bytes_per_commit\":0"));
    }

    #[test]
    fn attach_durability_fills_wal_columns() {
        use clanbft_telemetry::{counters, MemRecorder, Recorder};
        let rec = MemRecorder::new();
        for v in [100u64, 200, 300, 400] {
            rec.record(counters::WAL_FSYNC_MICROS, v);
        }
        rec.add(counters::WAL_BYTES, 9_000);
        rec.add(counters::COMMIT_VERTICES, 30);
        let mut m = RunMetrics {
            committed_txs: 0,
            throughput_tps: 0.0,
            avg_latency: Micros::ZERO,
            p50_latency: Micros::ZERO,
            p99_latency: Micros::ZERO,
            window: Micros::ZERO,
            committed_rounds: 0,
            total_bytes: 0,
            proposals: 0,
            batch_p50: 0,
            batch_p99: 0,
            batch_max: 0,
            sim_events: 0,
            wall_us: 0,
            sim_events_per_sec: 0.0,
            wall_us_per_sim_sec: 0.0,
            wal_fsync_p50_us: 0,
            wal_fsync_p99_us: 0,
            wal_bytes_per_commit: 0,
        };
        m.attach_durability(&rec);
        assert!(m.wal_fsync_p50_us > 0);
        assert!(m.wal_fsync_p99_us >= m.wal_fsync_p50_us);
        assert_eq!(m.wal_bytes_per_commit, 300);
    }
}
