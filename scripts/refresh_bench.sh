#!/usr/bin/env bash
# Regenerates the committed bench-trajectory artifacts. Run on a quiet host
# from the repository root, then commit the changed files:
#
#   BENCH_summary.json                    fig5 headline points (+ host rates)
#   crates/bench/BENCH_micro.json         micro-bench trajectory (NDJSON)
#   crates/bench/BENCH_perf_baseline.json perf_smoke pinned baseline
#   crates/bench/BENCH_fig5.json          full sweep history (append-only)
#
# Environment:
#   CLANBFT_FULL=1       run the paper's full fig5 load grid (hours, not
#                        minutes) and the full micro profile
#   CLANBFT_PROFILE=path also capture a fig5 stage profile (NDJSON +
#                        collapsed stacks) at `path`; use an absolute path
#                        (cargo runs bench binaries from the package dir)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release)"
cargo build --release --offline
cargo build --release --offline --examples -p clanbft-sim

echo "== perf_smoke: refresh the pinned profiler baseline"
# Re-measures the pinned workload and rewrites BENCH_perf_baseline.json:
# deterministic facts (committed txs, sim events, distinct scopes) exactly,
# wall times as this host measured them.
cargo run --release --offline -p clanbft-sim --example perf_smoke -- \
    target/perf-smoke --write-baseline

echo "== micro benches: rewrite BENCH_micro.json"
cargo bench -q --offline -p clanbft-bench --bench micro

echo "== fig5 sweep: rewrite BENCH_summary.json (this is the slow part)"
# Default profile: the reduced load grid, minutes. The sweep appends every
# point to BENCH_fig5.json and truncate-writes the repo-root summary with
# the best-throughput headline per (figure section, protocol), including
# the host-cost rates (sim_events_per_sec, wall_us_per_sim_sec) and — from
# the 5d durability section, which re-runs one point with every node on a
# real WAL — the fsync-latency percentiles and WAL bytes per commit
# (wal_fsync_p50_us / wal_fsync_p99_us / wal_bytes_per_commit; zero for
# the memory-only sections). fsync numbers are host properties: refresh on
# the same class of machine you are comparing against.
cargo bench -q --offline -p clanbft-bench --bench fig5_throughput_latency

echo
echo "refresh_bench: done — review and commit:"
git status --short BENCH_summary.json crates/bench/BENCH_*.json
