#!/usr/bin/env bash
# CI gate. Everything runs --offline: the workspace has a zero-dependency
# policy (see DESIGN.md) and must build and test with an empty registry
# cache. Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo build --release --offline"
cargo build --release --offline

echo "== cargo test -q --offline"
cargo test -q --offline

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== instrumented sim (trace invariants)"
# The example asserts per-party commit/round monotonicity and per-vertex
# propose <= certify <= commit over a live telemetry stream; it exits
# non-zero on any violation.
cargo run --release --offline -p clanbft-sim --example trace_summary > /dev/null

echo "== adversarial matrix (agreement + liveness + detection under attack)"
# Every Attack variant at the corruption threshold, plus the layer-level
# idempotence/hardening regressions and the same-seed adversarial
# determinism pin. Covered by the workspace test run above, but rerun
# explicitly so an attack regression is named in the CI log.
cargo test -q --offline -p clanbft-sim --test adversary
cargo test -q --offline -p clanbft-rbc --test idempotence --test hardening
cargo test -q --offline -p clanbft-consensus --test idempotence
cargo test -q --offline -p clanbft-sim --test determinism

echo "== client ingress (mempool admission, sizing, load generation, codecs)"
# Mempool unit suite plus the cross-crate suites: closed-loop exactly-once,
# open-loop backpressure, sizer adaptation, and the codec round-trip /
# malformed-encoding-never-panics properties.
cargo test -q --offline -p clanbft-mempool
cargo test -q --offline -p clanbft-sim --test loadgen --test properties

echo "== inspect gate (post-mortem toolchain over live traces)"
# capture_trace runs the same 7-party single-clan tribe twice (benign and
# with one withholding clan member, same seed), writes both merged NDJSON
# traces, and already asserts their invariants in-process. Re-judge both
# files through the clanbft-inspect binary: `check` fails on any
# incomplete span or unattributed evidence, and the diff between the runs
# must name the pull-retry machinery as the attack's dominant signature.
TRACES=target/ci-traces
rm -rf "$TRACES"
cargo run --release --offline -p clanbft-sim --example capture_trace -- "$TRACES" > /dev/null
INSPECT=target/release/clanbft-inspect
cargo build --release --offline -p clanbft-inspect
"$INSPECT" --check "$TRACES/benign.ndjson"
"$INSPECT" --check "$TRACES/withhold.ndjson"
if ! "$INSPECT" diff "$TRACES/benign.ndjson" "$TRACES/withhold.ndjson" \
        | grep -q "verdict: pull-retry is the dominant regression"; then
    echo "inspect diff failed to flag the pull-retry stage" >&2
    exit 1
fi
# The waterfall and DAG renderings must at least produce non-empty output
# on a real trace (their exact shape is pinned by unit/golden tests).
test -n "$("$INSPECT" waterfall "$TRACES/benign.ndjson" | head -1)"
test -n "$("$INSPECT" dot "$TRACES/benign.ndjson" --rounds 1..3 | head -1)"

echo "== load-generation smoke (>=100k closed-loop client txs, exactly-once)"
# loadgen_smoke runs a 4-party closed-loop workload, audits in-process that
# every admitted client transaction commits exactly once (no duplicates, no
# gaps, nothing left queued or in flight), and writes its instrumented
# trace; re-judge that trace through the clanbft-inspect binary too.
LOADGEN=target/ci-loadgen
rm -rf "$LOADGEN"
cargo run --release --offline -p clanbft-sim --example loadgen_smoke -- "$LOADGEN" > /dev/null
"$INSPECT" --check "$LOADGEN/loadgen.ndjson"

echo "== dependency audit (manifests must declare no external crates)"
if grep -R "rand\|proptest\|criterion\|crossbeam" crates/*/Cargo.toml Cargo.toml; then
    echo "external crate reference found in a manifest" >&2
    exit 1
fi

echo "CI OK"
