#!/usr/bin/env bash
# CI gate. Everything runs --offline: the workspace has a zero-dependency
# policy (see DESIGN.md) and must build and test with an empty registry
# cache. Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo build --release --offline"
cargo build --release --offline

echo "== cargo test -q --offline"
cargo test -q --offline

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== instrumented sim (trace invariants)"
# The example asserts per-party commit/round monotonicity and per-vertex
# propose <= certify <= commit over a live telemetry stream; it exits
# non-zero on any violation.
cargo run --release --offline -p clanbft-sim --example trace_summary > /dev/null

echo "== adversarial matrix (agreement + liveness + detection under attack)"
# Every Attack variant at the corruption threshold, plus the layer-level
# idempotence/hardening regressions and the same-seed adversarial
# determinism pin. Covered by the workspace test run above, but rerun
# explicitly so an attack regression is named in the CI log.
cargo test -q --offline -p clanbft-sim --test adversary
cargo test -q --offline -p clanbft-rbc --test idempotence --test hardening
cargo test -q --offline -p clanbft-consensus --test idempotence
cargo test -q --offline -p clanbft-sim --test determinism

echo "== dependency audit (manifests must declare no external crates)"
if grep -R "rand\|proptest\|criterion\|crossbeam" crates/*/Cargo.toml Cargo.toml; then
    echo "external crate reference found in a manifest" >&2
    exit 1
fi

echo "CI OK"
