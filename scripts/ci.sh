#!/usr/bin/env bash
# CI gate. Everything runs --offline: the workspace has a zero-dependency
# policy (see DESIGN.md) and must build and test with an empty registry
# cache. Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo build --release --offline"
cargo build --release --offline

echo "== cargo test -q --offline"
cargo test -q --offline

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== instrumented sim (trace invariants)"
# The example asserts per-party commit/round monotonicity and per-vertex
# propose <= certify <= commit over a live telemetry stream; it exits
# non-zero on any violation.
cargo run --release --offline -p clanbft-sim --example trace_summary > /dev/null

echo "== adversarial matrix (agreement + liveness + detection under attack)"
# Every Attack variant at the corruption threshold, plus the layer-level
# idempotence/hardening regressions and the same-seed adversarial
# determinism pin. Covered by the workspace test run above, but rerun
# explicitly so an attack regression is named in the CI log.
cargo test -q --offline -p clanbft-sim --test adversary
cargo test -q --offline -p clanbft-rbc --test idempotence --test hardening
cargo test -q --offline -p clanbft-consensus --test idempotence
cargo test -q --offline -p clanbft-sim --test determinism

echo "== client ingress (mempool admission, sizing, load generation, codecs)"
# Mempool unit suite plus the cross-crate suites: closed-loop exactly-once,
# open-loop backpressure, sizer adaptation, and the codec round-trip /
# malformed-encoding-never-panics properties.
cargo test -q --offline -p clanbft-mempool
cargo test -q --offline -p clanbft-sim --test loadgen --test properties

echo "== inspect gate (post-mortem toolchain over live traces)"
# capture_trace runs the same 7-party single-clan tribe twice (benign and
# with one withholding clan member, same seed), writes both merged NDJSON
# traces, and already asserts their invariants in-process. Re-judge both
# files through the clanbft-inspect binary: `check` fails on any
# incomplete span or unattributed evidence, and the diff between the runs
# must name the pull-retry machinery as the attack's dominant signature.
TRACES=target/ci-traces
rm -rf "$TRACES"
cargo run --release --offline -p clanbft-sim --example capture_trace -- "$TRACES" > /dev/null
INSPECT=target/release/clanbft-inspect
cargo build --release --offline -p clanbft-inspect
"$INSPECT" --check "$TRACES/benign.ndjson"
"$INSPECT" --check "$TRACES/withhold.ndjson"
if ! "$INSPECT" diff "$TRACES/benign.ndjson" "$TRACES/withhold.ndjson" \
        | grep -q "verdict: pull-retry is the dominant regression"; then
    echo "inspect diff failed to flag the pull-retry stage" >&2
    exit 1
fi
# The waterfall and DAG renderings must at least produce non-empty output
# on a real trace (their exact shape is pinned by unit/golden tests).
test -n "$("$INSPECT" waterfall "$TRACES/benign.ndjson" | head -1)"
test -n "$("$INSPECT" dot "$TRACES/benign.ndjson" --rounds 1..3 | head -1)"

echo "== load-generation smoke (>=100k closed-loop client txs, exactly-once)"
# loadgen_smoke runs a 4-party closed-loop workload, audits in-process that
# every admitted client transaction commits exactly once (no duplicates, no
# gaps, nothing left queued or in flight), and writes its instrumented
# trace; re-judge that trace through the clanbft-inspect binary too.
LOADGEN=target/ci-loadgen
rm -rf "$LOADGEN"
cargo run --release --offline -p clanbft-sim --example loadgen_smoke -- "$LOADGEN" > /dev/null
"$INSPECT" --check "$LOADGEN/loadgen.ndjson"

echo "== profile smoke (profiler contract + perf regression gate)"
# perf_smoke runs the pinned workload disabled / timing-only / fully
# profiled and asserts in-process: identical commits and event counts
# across modes, >= 8 stages over >= 5 subsystems with allocation
# attribution, deterministic scope counts, overhead under tolerance, and
# the deterministic facts pinned in crates/bench/BENCH_perf_baseline.json
# (exactly) plus the recorded wall time (x8 tolerance for host variance;
# CLANBFT_PERF_TOL / CLANBFT_PERF_TOL_PCT override).
PERF=target/ci-perf
rm -rf "$PERF"
cargo run --release --offline -p clanbft-sim --example perf_smoke -- "$PERF"
# Re-judge the emitted profiles through the inspect binary: the report must
# name the RBC hot stage, and the a->b diff of two same-seed runs must not
# flag a stage regression (they differ only by host noise).
"$INSPECT" profile "$PERF/profile_a.ndjson" | grep -q "rbc.handle"
if ! "$INSPECT" profile --diff "$PERF/profile_a.ndjson" "$PERF/profile_b.ndjson" --threshold 75 \
        | grep -q "verdict: OK"; then
    echo "inspect profile --diff flagged a regression between same-seed runs" >&2
    exit 1
fi

echo "== crash-recovery gate (WAL replay, state transfer, epoch rotation)"
# recovery_smoke runs two durable scenarios — a crash/restart recovered
# from checkpoint + WAL + peer state transfer, and an epoch rotation that
# deterministically replaces a crashed clan member — asserting in-process
# that the restarted party rebuilds from disk, rejoins the same total
# order gap-free, and that rotation never halts commits. Re-judge both
# traces through the inspect binary: `check` now also enforces the
# recovery-continuity (no lost or re-acked sequences across a restart)
# and no-equivocation (a restart re-broadcasts, never re-mints) invariants.
RECOVERY=target/ci-recovery
rm -rf "$RECOVERY"
cargo run --release --offline -p clanbft-sim --example recovery_smoke -- "$RECOVERY" > /dev/null
"$INSPECT" --check "$RECOVERY/restart.ndjson"
"$INSPECT" --check "$RECOVERY/rotation.ndjson"
# The kill/restart matrix (follower, clan member, f staggered, WAL-only vs
# state-transfer, rotation liveness) and the WAL torn-write/bit-flip
# properties; named explicitly so a recovery regression is named in the log.
cargo test -q --offline -p clanbft-sim --test fault_injection
cargo test -q --offline -p clanbft-storage

echo "== health-monitor gate (benign silence, fault alerts, offline parity)"
# monitor_smoke runs the same single-clan tribe benign and faulty (one
# withholding clan member plus a crash/restart) under the live monitor and
# asserts in-process: the benign run fires zero alerts with a healthy
# verdict, the faulty run fires pull_retry_storm against the starved victim
# and commit_stall against the crashed party, clears both on recovery, and
# still ends healthy. Re-judge both exported traces through the inspect
# binary: `check` for protocol invariants, and the `alerts` offline replay
# must reach the same verdict shape the online monitor saw.
MONITOR=target/ci-monitor
rm -rf "$MONITOR"
cargo run --release --offline -p clanbft-sim --example monitor_smoke -- "$MONITOR" > /dev/null
"$INSPECT" --check "$MONITOR/benign.ndjson"
"$INSPECT" --check "$MONITOR/faulty.ndjson"
if ! "$INSPECT" alerts "$MONITOR/benign.ndjson" | grep -q "no alerts"; then
    echo "offline replay found alerts in the benign trace" >&2
    exit 1
fi
FAULTY_ALERTS=$("$INSPECT" alerts "$MONITOR/faulty.ndjson")
for want in pull_retry_storm commit_stall "verdict: healthy"; do
    if ! grep -q "$want" <<< "$FAULTY_ALERTS"; then
        echo "offline alert replay of the faulty trace missing \"$want\"" >&2
        exit 1
    fi
done
# The live monitor's own alert stream must agree: empty for benign, storm +
# stall fired and cleared for faulty (files written by monitor_smoke).
test ! -s "$MONITOR/benign.alerts.ndjson"
grep -q '"alert":"clear","detector":"commit_stall"' "$MONITOR/faulty.alerts.ndjson"
grep -q '"alert":"clear","detector":"pull_retry_storm"' "$MONITOR/faulty.alerts.ndjson"
# Monitor precision/recall suites, named so a detector regression is named
# in the CI log (also covered by the workspace test run above).
cargo test -q --offline -p clanbft-monitor
cargo test -q --offline -p clanbft-sim --test monitor

echo "== bench trajectory (committed summary present and well-formed)"
# BENCH_summary.json is regenerated by scripts/refresh_bench.sh (the fig5
# sweep is too slow for CI); here we pin its shape so a stale or truncated
# commit fails fast: every line must carry the headline and host-rate
# fields, and the sweep must cover all three figure sections.
for key in throughput_tps p50_latency_us sim_events_per_sec wall_us_per_sim_sec \
           wal_fsync_p50_us wal_fsync_p99_us wal_bytes_per_commit; do
    if grep -v "\"$key\"" BENCH_summary.json | grep -q .; then
        echo "BENCH_summary.json: line missing \"$key\"" >&2
        exit 1
    fi
done
for fig in 5a 5b 5c 5d; do
    grep -q "\"figure\":\"$fig\"" BENCH_summary.json || {
        echo "BENCH_summary.json: figure $fig missing" >&2
        exit 1
    }
done
# The 5d durability point must carry a real (non-zero) fsync measurement:
# it is the one section that runs with storage attached.
if ! grep "\"figure\":\"5d\"" BENCH_summary.json | grep -qv "\"wal_fsync_p99_us\":0,"; then
    echo "BENCH_summary.json: 5d line has no measured fsync latency" >&2
    exit 1
fi

echo "== dependency audit (manifests must declare no external crates)"
if grep -R "rand\|proptest\|criterion\|crossbeam" crates/*/Cargo.toml Cargo.toml; then
    echo "external crate reference found in a manifest" >&2
    exit 1
fi

echo "CI OK"
